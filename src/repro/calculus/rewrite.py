"""Logical rewrites: negation normal form, quantifier duality, range nesting.

Three groups of transformations from the paper:

1. **Monotonicity lemma machinery (section 3.3).**  The proof sketch
   replaces range-coupled universal quantifiers by their one-sorted
   encoding (putting the range under NOT), then pushes negations inward
   with generalized deMorgan laws.  Over finite ranges the range-coupled
   duality ``NOT SOME r IN E (p) == ALL r IN E (NOT p)`` preserves both
   semantics and the NOT/ALL parity of every range occurrence, so
   :func:`negation_normal_form` works with the coupled forms directly.

2. **Range nesting N1–N3 ([JaKo 83], section 4).**

       N1: {EACH r IN R: p1 AND p2}      <==> {EACH r IN {EACH r' IN R: p1}: p2}
       N2: SOME r IN R (p1 AND p2)       <==> SOME r IN {EACH r' IN R: p1} (p2)
       N3: ALL r IN R (NOT(p1) OR p2)    <==> ALL r IN {EACH r' IN R: p1} (p2)

   ``unnest_query`` applies the <== direction exhaustively (understanding
   a query in terms of base relations); ``nest_binding`` and
   ``nest_quantifier`` apply the ==> direction for one variable, which is
   how the optimizer pushes restrictions into ranges (Case 1 of the
   constraint-propagation analysis).

3. **Simplification** — flattening AND/OR, unit laws for TRUE — used to
   keep rewritten trees small and comparable.
"""

from __future__ import annotations

import dataclasses

from . import ast
from .analysis import free_tuple_vars
from .subst import FreshNames, bound_vars, rename_vars, transform

_NEGATED_CMP = {"=": "<>", "<>": "=", "<": ">=", "<=": ">", ">": "<=", ">=": "<"}


# ---------------------------------------------------------------------------
# Simplification
# ---------------------------------------------------------------------------


def simplify(pred: ast.Pred) -> ast.Pred:
    """Flatten AND/OR, apply TRUE unit laws, unwrap singletons."""

    def rule(n: ast.Node) -> ast.Node | None:
        if isinstance(n, ast.And):
            parts: list[ast.Pred] = []
            for p in n.parts:
                if isinstance(p, ast.And):
                    parts.extend(p.parts)
                elif isinstance(p, ast.TruePred):
                    continue
                else:
                    parts.append(p)
            if not parts:
                return ast.TRUE
            if len(parts) == 1:
                return parts[0]
            return ast.And(tuple(parts))
        if isinstance(n, ast.Or):
            parts = []
            for p in n.parts:
                if isinstance(p, ast.TruePred):
                    return ast.TRUE
                if isinstance(p, ast.Or):
                    parts.extend(p.parts)
                else:
                    parts.append(p)
            if len(parts) == 1:
                return parts[0]
            return ast.Or(tuple(parts))
        if isinstance(n, ast.Not) and isinstance(n.pred, ast.Not):
            return n.pred.pred
        return None

    return transform(pred, rule)  # type: ignore[return-value]


# ---------------------------------------------------------------------------
# Negation normal form and quantifier duality
# ---------------------------------------------------------------------------


def negation_normal_form(pred: ast.Pred) -> ast.Pred:
    """Push negations inward until they sit on atoms only.

    Comparisons absorb the negation by operator flipping; negated
    memberships (``NOT (x IN R)``) and ``NOT TRUE`` remain as negated
    atoms.  Quantifiers flip by range-coupled duality, preserving the
    NOT+ALL parity of every range-name occurrence (tested property).
    """

    def pos(p: ast.Pred) -> ast.Pred:
        if isinstance(p, ast.Not):
            return neg(p.pred)
        if isinstance(p, ast.And):
            return ast.And(tuple(pos(q) for q in p.parts))
        if isinstance(p, ast.Or):
            return ast.Or(tuple(pos(q) for q in p.parts))
        if isinstance(p, ast.Some):
            return dataclasses.replace(p, pred=pos(p.pred))
        if isinstance(p, ast.All):
            return dataclasses.replace(p, pred=pos(p.pred))
        return p

    def neg(p: ast.Pred) -> ast.Pred:
        if isinstance(p, ast.Not):
            return pos(p.pred)
        if isinstance(p, ast.And):
            return ast.Or(tuple(neg(q) for q in p.parts))
        if isinstance(p, ast.Or):
            return ast.And(tuple(neg(q) for q in p.parts))
        if isinstance(p, ast.Some):
            return ast.All(p.vars, p.range, neg(p.pred))
        if isinstance(p, ast.All):
            return ast.Some(p.vars, p.range, neg(p.pred))
        if isinstance(p, ast.Cmp):
            return ast.Cmp(_NEGATED_CMP[p.op], p.left, p.right)
        # TruePred, InRel: keep a single NOT on the atom.
        return ast.Not(p)

    return pos(pred)


def eliminate_universals(pred: ast.Pred) -> ast.Pred:
    """Rewrite every ``ALL vs IN E (p)`` as ``NOT SOME vs IN E (NOT p)``.

    This is the range-coupled counterpart of the paper's one-sorted
    encoding: the ALL disappears and its range moves under a NOT, so
    occurrence parities are unchanged.
    """

    def rule(n: ast.Node) -> ast.Node | None:
        if isinstance(n, ast.All):
            return ast.Not(ast.Some(n.vars, n.range, ast.Not(n.pred)))
        return None

    return transform(pred, rule)  # type: ignore[return-value]


# ---------------------------------------------------------------------------
# Conjunct utilities
# ---------------------------------------------------------------------------


def conjuncts(pred: ast.Pred) -> tuple[ast.Pred, ...]:
    """The top-level conjuncts of ``pred`` (flattening nested ANDs)."""
    if isinstance(pred, ast.TruePred):
        return ()
    if isinstance(pred, ast.And):
        out: list[ast.Pred] = []
        for part in pred.parts:
            out.extend(conjuncts(part))
        return tuple(out)
    return (pred,)


def conjoin(parts: tuple[ast.Pred, ...] | list[ast.Pred]) -> ast.Pred:
    parts = tuple(parts)
    if not parts:
        return ast.TRUE
    if len(parts) == 1:
        return parts[0]
    return ast.And(parts)


# ---------------------------------------------------------------------------
# Range nesting: the <== direction (unnesting)
# ---------------------------------------------------------------------------


def _inlinable(query: ast.Query) -> ast.Branch | None:
    """A query usable for inlining: one identity branch, one binding."""
    if len(query.branches) != 1:
        return None
    branch = query.branches[0]
    if branch.targets is not None or len(branch.bindings) != 1:
        return None
    return branch


def unnest_query(query: ast.Query) -> ast.Query:
    """Exhaustively apply N1–N3 right-to-left, flattening nested ranges."""
    fresh = FreshNames(bound_vars(query))

    def unnest_range(rng: ast.RangeExpr) -> tuple[ast.RangeExpr, object]:
        """Returns (new range, predicate-maker) where the maker builds the
        residual predicate for a variable name, or None."""
        if isinstance(rng, ast.QueryRange):
            inner = _inlinable(unnest_query(rng.query))
            if inner is not None:
                base, maker = unnest_range(inner.bindings[0].range)
                inner_var = inner.bindings[0].var
                inner_pred = inner.pred

                def make(var: str, _iv=inner_var, _ip=inner_pred, _m=maker):
                    p = rename_vars(_ip, {_iv: var}) if _iv != var else _ip
                    if _m is not None:
                        p = conjoin((_m(var), p))
                    return p

                return base, make
        return rng, None

    def unnest_pred(pred: ast.Pred) -> ast.Pred:
        if isinstance(pred, ast.And):
            return ast.And(tuple(unnest_pred(p) for p in pred.parts))
        if isinstance(pred, ast.Or):
            return ast.Or(tuple(unnest_pred(p) for p in pred.parts))
        if isinstance(pred, ast.Not):
            return ast.Not(unnest_pred(pred.pred))
        if isinstance(pred, ast.Some):
            base, maker = unnest_range(pred.range)
            inner = unnest_pred(pred.pred)
            if maker is None:
                return dataclasses.replace(pred, pred=inner)
            extra = conjoin(tuple(maker(v) for v in pred.vars))
            return ast.Some(pred.vars, base, simplify(conjoin((extra, inner))))
        if isinstance(pred, ast.All):
            base, maker = unnest_range(pred.range)
            inner = unnest_pred(pred.pred)
            if maker is None:
                return dataclasses.replace(pred, pred=inner)
            # N3: ALL r IN {EACH r' IN R: p1} (p2) ==> ALL r IN R (NOT p1 OR p2)
            extra = conjoin(tuple(maker(v) for v in pred.vars))
            return ast.All(pred.vars, base, simplify(ast.Or((ast.Not(extra), inner))))
        return pred

    new_branches: list[ast.Branch] = []
    for branch in query.branches:
        bindings: list[ast.Binding] = []
        extra_preds: list[ast.Pred] = []
        for binding in branch.bindings:
            base, maker = unnest_range(binding.range)
            bindings.append(ast.Binding(binding.var, base))
            if maker is not None:
                extra_preds.append(maker(binding.var))
        pred = unnest_pred(branch.pred)
        full = simplify(conjoin((*extra_preds, pred)))
        new_branches.append(ast.Branch(tuple(bindings), full, branch.targets))
    return ast.Query(tuple(new_branches))


# ---------------------------------------------------------------------------
# Range nesting: the ==> direction (nesting restrictions into ranges)
# ---------------------------------------------------------------------------


def nest_binding(branch: ast.Branch, var: str) -> ast.Branch:
    """N1 left-to-right for one binding: move the conjuncts of the branch
    predicate that mention only ``var`` into a nested range for ``var``.

    Conjuncts mentioning no binding variable at all (pure parameter or
    constant conditions) are also movable; they restrict the range to
    empty or keep it intact uniformly, which is semantically identical.
    """
    target_binding = None
    for binding in branch.bindings:
        if binding.var == var:
            target_binding = binding
    if target_binding is None:
        raise ValueError(f"branch does not bind {var!r}")

    movable: list[ast.Pred] = []
    residual: list[ast.Pred] = []
    binding_vars = {b.var for b in branch.bindings}
    for conj in conjuncts(branch.pred):
        refs = free_tuple_vars(conj) & binding_vars
        if refs <= {var}:
            movable.append(conj)
        else:
            residual.append(conj)
    if not movable:
        return branch

    fresh = FreshNames(bound_vars(branch) | free_tuple_vars(branch))
    inner_var = fresh.fresh(var)
    inner_pred = rename_vars(conjoin(tuple(movable)), {var: inner_var})
    nested = ast.QueryRange(
        ast.Query((ast.Branch((ast.Binding(inner_var, target_binding.range),), inner_pred),))
    )
    new_bindings = tuple(
        ast.Binding(b.var, nested) if b.var == var else b for b in branch.bindings
    )
    return ast.Branch(new_bindings, simplify(conjoin(tuple(residual))), branch.targets)


def nest_quantifier(pred: ast.Some | ast.All) -> ast.Pred:
    """N2/N3 left-to-right: push restrictions into the quantifier range.

    For SOME, conjuncts of the body that mention only the quantified
    variables move into the range.  For ALL, the body must have the shape
    ``NOT(p1) OR p2`` with p1 mentioning only the quantified variables;
    p1 then becomes the range restriction.
    """
    if isinstance(pred, ast.Some):
        movable: list[ast.Pred] = []
        residual: list[ast.Pred] = []
        qvars = set(pred.vars)
        for conj in conjuncts(pred.pred):
            if free_tuple_vars(conj) <= qvars:
                movable.append(conj)
            else:
                residual.append(conj)
        if not movable or len(pred.vars) != 1:
            return pred
        var = pred.vars[0]
        fresh = FreshNames(bound_vars(pred) | free_tuple_vars(pred) | qvars)
        inner_var = fresh.fresh(var)
        inner_pred = rename_vars(conjoin(tuple(movable)), {var: inner_var})
        nested = ast.QueryRange(
            ast.Query((ast.Branch((ast.Binding(inner_var, pred.range),), inner_pred),))
        )
        return ast.Some(pred.vars, nested, simplify(conjoin(tuple(residual))))

    if isinstance(pred, ast.All):
        body = pred.pred
        if not (isinstance(body, ast.Or) and len(body.parts) == 2):
            return pred
        negated, rest = body.parts
        if not isinstance(negated, ast.Not):
            negated, rest = rest, negated
        if not isinstance(negated, ast.Not):
            return pred
        p1 = negated.pred
        if not (free_tuple_vars(p1) <= set(pred.vars)) or len(pred.vars) != 1:
            return pred
        var = pred.vars[0]
        fresh = FreshNames(bound_vars(pred) | free_tuple_vars(pred) | set(pred.vars))
        inner_var = fresh.fresh(var)
        inner_pred = rename_vars(p1, {var: inner_var})
        nested = ast.QueryRange(
            ast.Query((ast.Branch((ast.Binding(inner_var, pred.range),), inner_pred),))
        )
        return ast.All(pred.vars, nested, rest)

    raise TypeError(f"expected SOME or ALL, got {pred!r}")
