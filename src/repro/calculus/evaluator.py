"""Reference evaluator for tuple relational calculus expressions.

This is the *semantic baseline* of the library: a direct, readable
interpretation of queries as nested loops over range values, exactly
following the set-former reading of the paper's expressions.  Every other
engine (the plan-based executor, the fixpoint engines, the Datalog and
PROLOG engines) is tested against it.

Evaluation is dynamic: ranges are resolved against a
:class:`~repro.relational.Database`, plus

* ``params`` — actual values for selector/constructor formal parameters
  (scalars, or relations for relation-typed formals), and
* ``apply_values`` — current approximations for instantiated fixpoint
  variables (:class:`~repro.calculus.ast.ApplyVar`), supplied by the
  fixpoint engines.

Selected and constructed ranges dispatch (duck-typed, to keep package
layering acyclic) to the selector/constructor objects registered in the
database.
"""

from __future__ import annotations

from collections.abc import Collection, Mapping
from dataclasses import dataclass

from ..errors import EvaluationError
from ..relational import Database, Relation
from ..types import INTEGER, RecordType, record
from . import ast


@dataclass
class RangeValue:
    """A resolved range: raw rows plus the record type describing them."""

    rows: Collection[tuple]
    schema: RecordType


@dataclass
class EvalStats:
    """Operation counters for the reference evaluator."""

    bindings_iterated: int = 0
    predicates_checked: int = 0
    tuples_emitted: int = 0
    ranges_resolved: int = 0

    def merge(self, other: "EvalStats") -> None:
        self.bindings_iterated += other.bindings_iterated
        self.predicates_checked += other.predicates_checked
        self.tuples_emitted += other.tuples_emitted
        self.ranges_resolved += other.ranges_resolved


#: An environment maps tuple variables to (raw tuple, schema) pairs.
Env = dict[str, tuple[tuple, RecordType]]


def _is_cacheable(rexpr: ast.RangeExpr) -> bool:
    """True when the range's value cannot change within one evaluation.

    Cacheable ranges reference no enclosing tuple variables (no correlated
    arguments) and no fixpoint variables (whose approximations the fixpoint
    engines advance between evaluator instances).
    """
    return not any(
        isinstance(n, (ast.AttrRef, ast.VarRef, ast.ApplyVar)) for n in ast.walk(rexpr)
    )


class Evaluator:
    """Evaluates calculus ASTs against a database."""

    def __init__(
        self,
        db: Database,
        params: Mapping[str, object] | None = None,
        apply_values: Mapping[object, Collection[tuple]] | None = None,
        stats: EvalStats | None = None,
    ) -> None:
        self.db = db
        self.params = dict(params or {})
        self.apply_values = dict(apply_values or {})
        self.stats = stats if stats is not None else EvalStats()
        # Values of expensive uncorrelated ranges (constructed relations,
        # nested queries), keyed by AST node.  Valid for the lifetime of
        # this evaluator: one evaluator never spans a database mutation.
        self._range_cache: dict[ast.RangeExpr, RangeValue] = {}

    # -- public entry points ------------------------------------------------

    def eval_query(self, query: ast.Query, env: Env | None = None) -> set[tuple]:
        """Evaluate a set expression to a set of raw value tuples."""
        env = env or {}
        out: set[tuple] = set()
        for branch in query.branches:
            out |= self.eval_branch(branch, env)
        return out

    def eval_branch(self, branch: ast.Branch, env: Env) -> set[tuple]:
        if branch.targets is None and len(branch.bindings) != 1:
            raise EvaluationError(
                "a branch without a target list must bind exactly one variable"
            )
        out: set[tuple] = set()
        self._loop(branch, 0, dict(env), out)
        return out

    def eval_pred(self, pred: ast.Pred, env: Env) -> bool:
        self.stats.predicates_checked += 1
        return self._pred(pred, env)

    def eval_term(self, term: ast.Term, env: Env) -> object:
        return self._term(term, env)

    # -- range resolution ------------------------------------------------------

    def resolve_range(self, rexpr: ast.RangeExpr, env: Env) -> RangeValue:
        self.stats.ranges_resolved += 1
        if isinstance(rexpr, ast.RelRef):
            return self._resolve_name(rexpr.name)
        if isinstance(rexpr, ast.ApplyVar):
            try:
                rows = self.apply_values[rexpr.token]
            except KeyError:
                raise EvaluationError(
                    f"unbound fixpoint variable {rexpr.token!r}"
                ) from None
            return RangeValue(rows, rexpr.schema)
        cached = self._range_cache.get(rexpr)
        if cached is not None:
            return cached
        if isinstance(rexpr, ast.Selected):
            selector = self.db.selector(rexpr.selector)
            value = selector.apply_range(self, rexpr, env)
        elif isinstance(rexpr, ast.Constructed):
            constructor = self.db.constructor(rexpr.constructor)
            value = constructor.reference_value(self, rexpr, env)
        elif isinstance(rexpr, ast.QueryRange):
            schema = self.infer_schema(rexpr, env)
            value = RangeValue(self.eval_query(rexpr.query, env), schema)
        else:
            raise EvaluationError(f"not a range expression: {rexpr!r}")
        if _is_cacheable(rexpr):
            self._range_cache[rexpr] = value
        return value

    def _resolve_name(self, name: str) -> RangeValue:
        if name in self.params:
            value = self.params[name]
            if isinstance(value, Relation):
                return RangeValue(value.raw(), value.element_type)
            if isinstance(value, RangeValue):
                return value
            raise EvaluationError(
                f"parameter {name!r} is not relation-valued: {value!r}"
            )
        rel = self.db.relation(name)
        return RangeValue(rel.raw(), rel.element_type)

    # -- schema inference -------------------------------------------------------

    def infer_schema(self, rexpr: ast.RangeExpr, env: Env) -> RecordType:
        """The record type describing the tuples a range produces."""
        if isinstance(rexpr, ast.RelRef):
            name = rexpr.name
            if name not in self.params and name in self.db:
                # Schema-only access: never touch the rows, so compiling
                # against a cold store-backed relation stays scan-free.
                return self.db.relation(name).element_type
            return self._resolve_name(name).schema
        if isinstance(rexpr, ast.ApplyVar):
            return rexpr.schema
        if isinstance(rexpr, ast.Selected):
            return self.infer_schema(rexpr.base, env)
        if isinstance(rexpr, ast.Constructed):
            constructor = self.db.constructor(rexpr.constructor)
            return constructor.result_type.element
        if isinstance(rexpr, ast.QueryRange):
            return self._infer_query_schema(rexpr.query, env)
        raise EvaluationError(f"not a range expression: {rexpr!r}")

    def _infer_query_schema(self, query: ast.Query, env: Env) -> RecordType:
        if not query.branches:
            raise EvaluationError("cannot infer the schema of an empty query")
        branch = query.branches[0]
        if branch.targets is None:
            return self.infer_schema(branch.bindings[0].range, env)
        var_schemas = {
            b.var: self.infer_schema(b.range, env) for b in branch.bindings
        }
        fields: dict[str, object] = {}
        for i, target in enumerate(branch.targets):
            name, ftype = self._target_field(target, var_schemas, i)
            while name in fields:
                name += "_"
            fields[name] = ftype
        return record("anonymous", **fields)  # type: ignore[arg-type]

    def _target_field(self, target: ast.Term, var_schemas, position: int):
        if isinstance(target, ast.AttrRef) and target.var in var_schemas:
            schema = var_schemas[target.var]
            return target.attr, schema.field_type(target.attr)
        if isinstance(target, ast.Const):
            from ..types import BOOLEAN, REAL, STRING

            value = target.value
            if isinstance(value, bool):
                return f"c{position}", BOOLEAN
            if isinstance(value, str):
                return f"c{position}", STRING
            if isinstance(value, float):
                return f"c{position}", REAL
            return f"c{position}", INTEGER
        return f"c{position}", INTEGER

    # -- branch loops -----------------------------------------------------------

    def _loop(self, branch: ast.Branch, depth: int, env: Env, out: set[tuple]) -> None:
        if depth == len(branch.bindings):
            if self.eval_pred(branch.pred, env):
                out.add(self._emit(branch, env))
                self.stats.tuples_emitted += 1
            return
        binding = branch.bindings[depth]
        value = self.resolve_range(binding.range, env)
        for row in value.rows:
            self.stats.bindings_iterated += 1
            env[binding.var] = (row, value.schema)
            self._loop(branch, depth + 1, env, out)
        env.pop(binding.var, None)

    def _emit(self, branch: ast.Branch, env: Env) -> tuple:
        if branch.targets is None:
            row, _schema = env[branch.bindings[0].var]
            return row
        return tuple(self._term(t, env) for t in branch.targets)

    # -- predicates -------------------------------------------------------------

    def _pred(self, pred: ast.Pred, env: Env) -> bool:
        if isinstance(pred, ast.TruePred):
            return True
        if isinstance(pred, ast.Cmp):
            return _compare(pred.op, self._term(pred.left, env), self._term(pred.right, env))
        if isinstance(pred, ast.Not):
            return not self._pred(pred.pred, env)
        if isinstance(pred, ast.And):
            return all(self._pred(p, env) for p in pred.parts)
        if isinstance(pred, ast.Or):
            return any(self._pred(p, env) for p in pred.parts)
        if isinstance(pred, ast.Some):
            return self._quantified(pred, env, existential=True)
        if isinstance(pred, ast.All):
            return self._quantified(pred, env, existential=False)
        if isinstance(pred, ast.InRel):
            element = self._term(pred.element, env)
            value = self.resolve_range(pred.range, env)
            if not isinstance(element, tuple):
                element = (element,)
            return element in value.rows if isinstance(value.rows, (set, frozenset)) else element in set(value.rows)
        raise EvaluationError(f"not a predicate: {pred!r}")

    def _quantified(self, pred: ast.Some | ast.All, env: Env, existential: bool) -> bool:
        value = self.resolve_range(pred.range, env)
        rows = list(value.rows)
        saved = {v: env.get(v) for v in pred.vars}

        def assign(index: int) -> bool:
            if index == len(pred.vars):
                return self._pred(pred.pred, env)
            var = pred.vars[index]
            if existential:
                for row in rows:
                    self.stats.bindings_iterated += 1
                    env[var] = (row, value.schema)
                    if assign(index + 1):
                        return True
                return False
            for row in rows:
                self.stats.bindings_iterated += 1
                env[var] = (row, value.schema)
                if not assign(index + 1):
                    return False
            return True

        try:
            return assign(0)
        finally:
            for var, old in saved.items():
                if old is None:
                    env.pop(var, None)
                else:
                    env[var] = old

    # -- terms --------------------------------------------------------------------

    def _term(self, term: ast.Term, env: Env) -> object:
        if isinstance(term, ast.Const):
            return term.value
        if isinstance(term, ast.AttrRef):
            bound = env.get(term.var)
            if bound is None:
                raise EvaluationError(f"unbound tuple variable {term.var!r}")
            row, schema = bound
            return row[schema.index_of(term.attr)]
        if isinstance(term, ast.VarRef):
            bound = env.get(term.var)
            if bound is None:
                raise EvaluationError(f"unbound tuple variable {term.var!r}")
            return bound[0]
        if isinstance(term, ast.ParamRef):
            try:
                value = self.params[term.name]
            except KeyError:
                raise EvaluationError(
                    f"unbound parameter {term.name!r}"
                ) from None
            if isinstance(value, (Relation, RangeValue)):
                raise EvaluationError(
                    f"parameter {term.name!r} is relation-valued, not scalar"
                )
            return value
        if isinstance(term, ast.Arith):
            left = self._term(term.left, env)
            right = self._term(term.right, env)
            return _arith(term.op, left, right)
        if isinstance(term, ast.TupleCons):
            return tuple(self._term(i, env) for i in term.items)
        raise EvaluationError(f"not a term: {term!r}")


def _compare(op: str, left: object, right: object) -> bool:
    if op == "=":
        return left == right
    if op == "<>":
        return left != right
    if op == "<":
        return left < right  # type: ignore[operator]
    if op == "<=":
        return left <= right  # type: ignore[operator]
    if op == ">":
        return left > right  # type: ignore[operator]
    if op == ">=":
        return left >= right  # type: ignore[operator]
    raise EvaluationError(f"unknown comparison operator {op!r}")


def _arith(op: str, left: object, right: object) -> object:
    if op == "+":
        return left + right  # type: ignore[operator]
    if op == "-":
        return left - right  # type: ignore[operator]
    if op == "*":
        return left * right  # type: ignore[operator]
    if op == "DIV":
        return left // right  # type: ignore[operator]
    if op == "MOD":
        return left % right  # type: ignore[operator]
    raise EvaluationError(f"unknown arithmetic operator {op!r}")


def evaluate(
    db: Database,
    query: ast.Query,
    params: Mapping[str, object] | None = None,
    apply_values: Mapping[object, Collection[tuple]] | None = None,
) -> set[tuple]:
    """One-shot convenience wrapper around :class:`Evaluator`."""
    return Evaluator(db, params, apply_values).eval_query(query)
