"""Rendering calculus ASTs in the paper's concrete syntax.

``render(node)`` produces text such as

    {EACH r IN Infront: TRUE,
     <f.front, b.back> OF EACH f, b IN Infront: f.back = b.front}

which is also (modulo whitespace) the syntax the DBPL surface parser
accepts, enabling render/parse round-trip tests.
"""

from __future__ import annotations

from . import ast


def render_term(term: ast.Term) -> str:
    if isinstance(term, ast.Const):
        value = term.value
        if isinstance(value, bool):
            return "TRUE" if value else "FALSE"
        if isinstance(value, str):
            return f'"{value}"'
        return repr(value)
    if isinstance(term, ast.AttrRef):
        return f"{term.var}.{term.attr}"
    if isinstance(term, ast.VarRef):
        return term.var
    if isinstance(term, ast.ParamRef):
        return term.name
    if isinstance(term, ast.Arith):
        op = term.op if term.op in ("+", "-", "*") else f" {term.op} "
        return f"({render_term(term.left)}{op}{render_term(term.right)})"
    if isinstance(term, ast.TupleCons):
        return "<" + ", ".join(render_term(i) for i in term.items) + ">"
    raise TypeError(f"not a term: {term!r}")


def render_range(rng: ast.RangeExpr) -> str:
    if isinstance(rng, ast.RelRef):
        return rng.name
    if isinstance(rng, ast.Selected):
        args = _render_args(rng.args)
        return f"{render_range(rng.base)}[{rng.selector}{args}]"
    if isinstance(rng, ast.Constructed):
        args = _render_args(rng.args)
        return f"{render_range(rng.base)}{{{rng.constructor}{args}}}"
    if isinstance(rng, ast.QueryRange):
        return render_query(rng.query)
    if isinstance(rng, ast.ApplyVar):
        return f"@{rng.token}"
    raise TypeError(f"not a range: {rng!r}")


def _render_args(args: tuple[ast.Argument, ...]) -> str:
    if not args:
        return ""
    rendered = []
    for arg in args:
        if isinstance(arg, (ast.RelRef, ast.Selected, ast.Constructed, ast.QueryRange, ast.ApplyVar)):
            rendered.append(render_range(arg))
        else:
            rendered.append(render_term(arg))
    return "(" + ", ".join(rendered) + ")"


def render_pred(pred: ast.Pred, parenthesize: bool = False) -> str:
    text = _render_pred(pred)
    return f"({text})" if parenthesize else text


def _render_pred(pred: ast.Pred) -> str:
    if isinstance(pred, ast.TruePred):
        return "TRUE"
    if isinstance(pred, ast.Cmp):
        return f"{render_term(pred.left)} {pred.op} {render_term(pred.right)}"
    if isinstance(pred, ast.Not):
        return f"NOT ({_render_pred(pred.pred)})"
    if isinstance(pred, ast.And):
        return " AND ".join(_maybe_paren(p, (ast.Or,)) for p in pred.parts)
    if isinstance(pred, ast.Or):
        return " OR ".join(_maybe_paren(p, ()) for p in pred.parts)
    if isinstance(pred, ast.Some):
        names = ", ".join(pred.vars)
        return f"SOME {names} IN {render_range(pred.range)} ({_render_pred(pred.pred)})"
    if isinstance(pred, ast.All):
        names = ", ".join(pred.vars)
        return f"ALL {names} IN {render_range(pred.range)} ({_render_pred(pred.pred)})"
    if isinstance(pred, ast.InRel):
        return f"{render_term(pred.element)} IN {render_range(pred.range)}"
    raise TypeError(f"not a predicate: {pred!r}")


def _maybe_paren(pred: ast.Pred, wrap_types: tuple) -> str:
    text = _render_pred(pred)
    if isinstance(pred, wrap_types):
        return f"({text})"
    return text


def render_branch(branch: ast.Branch) -> str:
    bindings = ", ".join(f"EACH {b.var} IN {render_range(b.range)}" for b in branch.bindings)
    head = ""
    if branch.targets is not None:
        head = "<" + ", ".join(render_term(t) for t in branch.targets) + "> OF "
    return f"{head}{bindings}: {_render_pred(branch.pred)}"


def render_query(query: ast.Query) -> str:
    return "{" + ",\n ".join(render_branch(b) for b in query.branches) + "}"


def render(node: object) -> str:
    """Render any calculus AST node."""
    if isinstance(node, ast.Query):
        return render_query(node)
    if isinstance(node, ast.Branch):
        return render_branch(node)
    if isinstance(node, (ast.RelRef, ast.Selected, ast.Constructed, ast.QueryRange, ast.ApplyVar)):
        return render_range(node)
    if isinstance(
        node, (ast.TruePred, ast.Cmp, ast.Not, ast.And, ast.Or, ast.Some, ast.All, ast.InRel)
    ):
        return render_pred(node)
    if isinstance(node, ast.Binding):
        return f"EACH {node.var} IN {render_range(node.range)}"
    return render_term(node)  # type: ignore[arg-type]
