"""Occurrence analysis: names under NOT and ALL, positivity (section 3.3).

The paper defines, for a DBPL expression ``f``:

* a name *appears under ALL* when it appears in the range ``exp`` of
  ``ALL r IN exp (p)``  — names appearing only in the inner predicate
  ``p`` are *not* under that ALL;
* a name *appears under NOT* when it appears inside a negated factor;
* ``f(Rel_1, ..., Rel_n)`` satisfies the **positivity constraint** when
  every occurrence of each ``Rel_i`` is under an *even* total number of
  NOTs and ALLs.

The accompanying lemma (each positive expression is monotone in all its
arguments) justifies :func:`is_positive_in` as the compiler's
monotonicity test; :mod:`repro.calculus.rewrite` provides the
transformation from the lemma's proof sketch, and the test suite checks
the two against each other.

Names here are either relation-variable names (``str`` from ``RelRef``)
or instantiated-application tokens (from ``ApplyVar``), so the same
analysis serves raw bodies and instantiated fixpoint systems.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from . import ast

#: A name is a relation identifier or an ApplyVar token.
Name = object


@dataclass(frozen=True)
class Occurrence:
    """One occurrence of a range name, with its negation/quantifier depth."""

    name: Name
    nots: int
    alls: int
    #: The AST node of the occurrence (span carrier for diagnostics);
    #: excluded from equality so occurrence sets still compare by content.
    node: object = field(default=None, compare=False, repr=False)

    @property
    def total(self) -> int:
        return self.nots + self.alls

    @property
    def positive(self) -> bool:
        return self.total % 2 == 0


def _range_names(rng: ast.RangeExpr) -> list[Name]:
    """Immediate name(s) denoted by a range expression head."""
    if isinstance(rng, ast.RelRef):
        return [rng.name]
    if isinstance(rng, ast.ApplyVar):
        return [rng.token]
    return []


def range_occurrences(node: ast.Node) -> list[Occurrence]:
    """All occurrences of range names in ``node`` with NOT/ALL depths.

    Counting rules (paper section 3.3):
    * ``NOT fact`` adds one NOT level to everything inside ``fact``;
    * ``ALL vs IN exp (p)`` adds one ALL level to names in ``exp`` only;
    * ``SOME`` adds nothing;
    * all other constructs are transparent.
    """
    out: list[Occurrence] = []

    def visit_range(rng: ast.RangeExpr, nots: int, alls: int) -> None:
        for name in _range_names(rng):
            out.append(Occurrence(name, nots, alls, rng))
        if isinstance(rng, (ast.Selected, ast.Constructed)):
            visit_range(rng.base, nots, alls)
            for arg in rng.args:
                if isinstance(
                    arg,
                    (ast.RelRef, ast.Selected, ast.Constructed, ast.QueryRange, ast.ApplyVar),
                ):
                    visit_range(arg, nots, alls)
        elif isinstance(rng, ast.QueryRange):
            visit_query(rng.query, nots, alls)

    def visit_pred(pred: ast.Pred, nots: int, alls: int) -> None:
        if isinstance(pred, ast.Not):
            visit_pred(pred.pred, nots + 1, alls)
        elif isinstance(pred, (ast.And, ast.Or)):
            for part in pred.parts:
                visit_pred(part, nots, alls)
        elif isinstance(pred, ast.Some):
            visit_range(pred.range, nots, alls)
            visit_pred(pred.pred, nots, alls)
        elif isinstance(pred, ast.All):
            visit_range(pred.range, nots, alls + 1)
            visit_pred(pred.pred, nots, alls)
        elif isinstance(pred, ast.InRel):
            visit_range(pred.range, nots, alls)
        # TruePred / Cmp contain no range names.

    def visit_query(query: ast.Query, nots: int, alls: int) -> None:
        for branch in query.branches:
            for binding in branch.bindings:
                visit_range(binding.range, nots, alls)
            visit_pred(branch.pred, nots, alls)

    if isinstance(node, ast.Query):
        visit_query(node, 0, 0)
    elif isinstance(node, ast.Branch):
        visit_query(ast.Query((node,)), 0, 0)
    elif isinstance(
        node, (ast.RelRef, ast.Selected, ast.Constructed, ast.QueryRange, ast.ApplyVar)
    ):
        visit_range(node, 0, 0)
    else:
        visit_pred(node, 0, 0)  # type: ignore[arg-type]
    return out


def occurrences_of(node: ast.Node, names: set[Name]) -> list[Occurrence]:
    return [occ for occ in range_occurrences(node) if occ.name in names]


def positivity_violations(node: ast.Node, names: set[Name]) -> list[Occurrence]:
    """Occurrences of ``names`` under an odd NOT+ALL total."""
    return [occ for occ in occurrences_of(node, names) if not occ.positive]


def is_positive_in(node: ast.Node, names: set[Name]) -> bool:
    """The paper's positivity constraint, restricted to ``names``."""
    return not positivity_violations(node, names)


def free_range_names(node: ast.Node) -> set[str]:
    """All relation-variable names referenced anywhere in ``node``."""
    return {
        occ.name for occ in range_occurrences(node) if isinstance(occ.name, str)
    }


def free_tuple_vars(node: ast.Node) -> set[str]:
    """Tuple variables referenced in ``node`` but not bound inside it."""
    free: set[str] = set()

    def visit(n: ast.Node, bound: frozenset[str]) -> None:
        if isinstance(n, ast.AttrRef):
            if n.var not in bound:
                free.add(n.var)
            return
        if isinstance(n, ast.VarRef):
            if n.var not in bound:
                free.add(n.var)
            return
        if isinstance(n, (ast.Some, ast.All)):
            visit(n.range, bound)
            visit(n.pred, bound | frozenset(n.vars))
            return
        if isinstance(n, ast.Branch):
            inner = bound | frozenset(b.var for b in n.bindings)
            for b in n.bindings:
                visit(b.range, bound)
            visit(n.pred, inner)
            if n.targets is not None:
                for t in n.targets:
                    visit(t, inner)
            return
        for child in ast.iter_children(n):
            visit(child, bound)

    visit(node, frozenset())
    return free


def uses_constructed_ranges(node: ast.Node) -> bool:
    """True when any range inside ``node`` is a constructor application."""
    return any(isinstance(n, ast.Constructed) for n in ast.walk(node))
