"""Exception taxonomy for the ``repro`` library.

Every error raised by the library derives from :class:`DBPLError`, named
after the database programming language (DBPL) whose construct set the
paper extends.  Grouping the hierarchy in one module keeps the mapping
between paper concepts and failure modes explicit:

* type and key violations correspond to the ``<exception>`` arms of the
  paper's checked-assignment expansions (sections 2.1 and 2.2);
* :class:`PositivityError` is the compile-time rejection of section 3.3;
* :class:`ConvergenceError` is the runtime detection of a fixpoint
  iteration that provably has no limit (the ``nonsense`` constructor);
* parse/binding errors belong to the DBPL surface language front end.
"""

from __future__ import annotations


class DBPLError(Exception):
    """Base class of every error raised by the ``repro`` library."""


# ---------------------------------------------------------------------------
# Typing and data integrity
# ---------------------------------------------------------------------------


class TypeMismatchError(DBPLError):
    """A value does not belong to the domain set of the declared type."""


class SchemaError(DBPLError):
    """A record/relation schema is malformed or two schemas are incompatible."""


class KeyConstraintError(DBPLError):
    """An assignment would violate a relation's key functional dependency.

    This corresponds to the ``ELSE <exception>`` arm of the key-checking
    conditional assignment in section 2.2 of the paper.
    """


class IntegrityError(DBPLError):
    """A checked (selector-guarded) assignment rejected its right-hand side.

    Raised when ``Rel[selector] := rex`` finds a tuple of ``rex`` that does
    not satisfy the selector predicate (section 2.3, Fig. 1).
    """


class StorageError(DBPLError):
    """A persisted database directory is missing, malformed, or unreadable.

    Raised by :mod:`repro.relational.storage` when a spill target cannot
    be written or an on-disk relation fails its self-description checks
    (bad magic, truncated pages, unknown codec without its reader).
    """


# ---------------------------------------------------------------------------
# Names and scope
# ---------------------------------------------------------------------------


class NameResolutionError(DBPLError):
    """An identifier (relation, selector, constructor, parameter) is unknown."""


class ArityError(DBPLError):
    """An application supplies the wrong number or kind of arguments."""


# ---------------------------------------------------------------------------
# Constructor semantics
# ---------------------------------------------------------------------------


class PositivityError(DBPLError):
    """A constructor body violates the positivity constraint (section 3.3).

    Some occurrence of a recursive relation name appears under an odd
    total number of negations and universal quantifiers, so monotonicity
    — and therefore convergence of the fixpoint iteration — cannot be
    guaranteed.  The DBPL compiler rejects such constructors.
    """


class ConvergenceError(DBPLError):
    """A (non-monotone) fixpoint iteration was detected not to converge.

    Either the iteration revisited an earlier state without reaching a
    consecutive-equal pair (a genuine oscillation, as with the paper's
    ``nonsense`` constructor), or it exceeded the configured iteration
    budget.
    """


class EvaluationError(DBPLError):
    """A calculus expression could not be evaluated (bad term, bad range)."""


# ---------------------------------------------------------------------------
# Translation (Datalog / PROLOG bridge)
# ---------------------------------------------------------------------------


class TranslationError(DBPLError):
    """A constructor (or Datalog program) falls outside the translatable
    fragment of the section 3.4 equivalence lemma."""


# ---------------------------------------------------------------------------
# Surface language
# ---------------------------------------------------------------------------


class DBPLSyntaxError(DBPLError):
    """The DBPL surface parser rejected the input text."""

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        location = f" at line {line}, column {column}" if line else ""
        super().__init__(f"{message}{location}")
        self.line = line
        self.column = column


class BindingError(DBPLError):
    """A parsed DBPL declaration could not be bound to library objects."""


# ---------------------------------------------------------------------------
# Static analysis
# ---------------------------------------------------------------------------


class AnalysisError(DBPLError):
    """The static analyzer rejected a program before compilation.

    Carries the full :class:`~repro.analysis.diagnostics.Diagnostics`
    collection (``.diagnostics``) and the span of the first error
    (``.span``), so callers can point at the offending source text.
    """

    def __init__(self, message: str, diagnostics=None, span=None) -> None:
        super().__init__(message)
        self.diagnostics = diagnostics
        self.span = span
        self.line = span.line if span is not None else 0
        self.column = span.column if span is not None else 0


class DatalogAnalysisError(AnalysisError, TranslationError):
    """Analyzer rejection of a Datalog program at the engine gate.

    Inherits :class:`TranslationError` so existing callers that treat
    unsafe Datalog as untranslatable keep working.
    """
