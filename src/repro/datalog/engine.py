"""Bottom-up Datalog evaluation: naive, semi-naive, and compiled.

The naive and semi-naive modes are deliberately *independent* of the
constructor machinery — they evaluate rules by substitution over fact
sets — so the test suite can cross-check three separately-implemented
evaluators (constructor fixpoints, this engine, and SLD resolution)
against each other, which is the strongest correctness evidence a
reproduction can offer.

``mode="compiled"`` routes the program through the section 3.4
translation (:mod:`repro.datalog.to_constructors`) into constructor
systems and runs the planner's batched fixpoint executor on them —
Datalog queries get cost-based join ordering, hash-join access paths,
and set-at-a-time execution for free, while the substitution engines
remain the semantic baseline.

Only positive programs (no negation) with optional comparison literals
are supported, matching the section 3.4 fragment.  Rules must be range
restricted (safe); violations raise :class:`~repro.errors.TranslationError`.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.diagnostics import Diagnostics
from ..compiler.options import _UNSET as _OPT_UNSET
from ..compiler.options import ExecOptions, resolve_options
from ..errors import DatalogAnalysisError, TranslationError
from .ast import Atom, Comparison, Const, Program, Rule

Bindings = dict[str, object]
Facts = dict[str, set[tuple]]


@dataclass
class DatalogStats:
    """Operation counters for bottom-up evaluation."""

    mode: str = "seminaive"
    iterations: int = 0
    rule_firings: int = 0
    substitutions: int = 0
    tuples_derived: int = 0


_CMP = {
    "=": lambda a, b: a == b,
    "\\=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "=<": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


def _analysis_gate(program: Program) -> Diagnostics:
    """Run the static analyzer over ``program`` and reject on errors.

    Errors (unsafe rules, negation outside the positive fragment,
    non-stratifiable programs) raise :class:`DatalogAnalysisError`, a
    span-carrying subclass of :class:`TranslationError`, so existing
    callers that catch the latter are unaffected.  Warnings and hints
    are returned for the engine to keep on ``self.diagnostics``.
    """
    # Imported here: repro.analysis.rules walks the Datalog AST, so a
    # module-level import would be circular through the package __init__.
    from ..analysis.rules import analyze_datalog

    diags = analyze_datalog(program, positive_only=True)
    diags.raise_if_errors("datalog program rejected", cls=DatalogAnalysisError)
    return diags


def _match_atom(
    atom: Atom, fact: tuple, bindings: Bindings
) -> Bindings | None:
    """Extend ``bindings`` so that atom matches fact, or None."""
    out = bindings
    copied = False
    for term, value in zip(atom.terms, fact):
        if isinstance(term, Const):
            if term.value != value:
                return None
        else:
            bound = out.get(term.name, _UNSET)
            if bound is _UNSET:
                if not copied:
                    out = dict(out)
                    copied = True
                out[term.name] = value
            elif bound != value:
                return None
    return out if copied else dict(out)


_UNSET = object()


class DatalogEngine:
    """Evaluates a positive Datalog program over extensional facts."""

    def __init__(self, program: Program, edb: Facts | None = None) -> None:
        self.diagnostics = _analysis_gate(program)
        self.program = program
        self.edb: Facts = {p: set(rows) for p, rows in (edb or {}).items()}
        # Facts written inline in the program join the EDB.
        for rule in program.rules:
            if rule.is_fact:
                self.edb.setdefault(rule.head.pred, set()).add(
                    tuple(t.value for t in rule.head.terms)  # type: ignore[union-attr]
                )
        self.idb_rules = [r for r in program.rules if not r.is_fact]
        self.idb_preds = {r.head.pred for r in self.idb_rules}

    # -- rule application ---------------------------------------------------

    def _facts_for(
        self, pred: str, totals: Facts, overrides: dict[str, set[tuple]] | None
    ) -> set[tuple]:
        if overrides is not None and pred in overrides:
            return overrides[pred]
        return totals.get(pred, set())

    def _fire(
        self,
        rule: Rule,
        totals: Facts,
        stats: DatalogStats,
        overrides_per_atom: list[dict[str, set[tuple]] | None] | None = None,
    ) -> set[tuple]:
        """All head tuples derivable from ``rule`` under ``totals``.

        ``overrides_per_atom`` optionally substitutes the fact set seen by
        individual body-atom positions (used by the semi-naive split).
        """
        stats.rule_firings += 1
        derived: set[tuple] = set()
        atoms = [i for i, lit in enumerate(rule.body) if isinstance(lit, Atom)]
        comparisons = [
            (i, lit) for i, lit in enumerate(rule.body) if isinstance(lit, Comparison)
        ]

        def emit(bindings: Bindings) -> None:
            values = []
            for term in rule.head.terms:
                if isinstance(term, Const):
                    values.append(term.value)
                else:
                    values.append(bindings[term.name])
            derived.add(tuple(values))

        def comparisons_ok(bindings: Bindings) -> bool:
            for _i, cmp in comparisons:
                left = cmp.left.value if isinstance(cmp.left, Const) else bindings.get(cmp.left.name, _UNSET)
                right = cmp.right.value if isinstance(cmp.right, Const) else bindings.get(cmp.right.name, _UNSET)
                if left is _UNSET or right is _UNSET:
                    raise TranslationError(
                        f"comparison {cmp} has unbound variables in rule {rule}"
                    )
                if not _CMP[cmp.op](left, right):
                    return False
            return True

        def join(index: int, bindings: Bindings) -> None:
            if index == len(atoms):
                if comparisons_ok(bindings):
                    emit(bindings)
                return
            atom_pos = atoms[index]
            atom: Atom = rule.body[atom_pos]  # type: ignore[assignment]
            overrides = (
                overrides_per_atom[index] if overrides_per_atom is not None else None
            )
            for fact in self._facts_for(atom.pred, totals, overrides):
                stats.substitutions += 1
                extended = _match_atom(atom, fact, bindings)
                if extended is not None:
                    join(index + 1, extended)

        join(0, {})
        return derived

    # -- naive evaluation ---------------------------------------------------------

    def solve_naive(self, stats: DatalogStats | None = None) -> dict[str, frozenset]:
        stats = stats if stats is not None else DatalogStats()
        stats.mode = "naive"
        totals: Facts = {p: set(rows) for p, rows in self.edb.items()}
        while True:
            stats.iterations += 1
            new: Facts = {}
            for rule in self.idb_rules:
                new.setdefault(rule.head.pred, set()).update(
                    self._fire(rule, totals, stats)
                )
            changed = False
            for pred, rows in new.items():
                current = totals.setdefault(pred, set())
                fresh = rows - current
                if fresh:
                    stats.tuples_derived += len(fresh)
                    current |= fresh
                    changed = True
            if not changed:
                return {p: frozenset(rows) for p, rows in totals.items()}

    # -- semi-naive evaluation -------------------------------------------------------

    def solve_seminaive(
        self, stats: DatalogStats | None = None
    ) -> dict[str, frozenset]:
        stats = stats if stats is not None else DatalogStats()
        stats.mode = "seminaive"
        totals: Facts = {p: set(rows) for p, rows in self.edb.items()}

        # Round 1: every rule fires once against the EDB state.
        deltas: Facts = {p: set() for p in self.idb_preds}
        stats.iterations = 1
        for rule in self.idb_rules:
            produced = self._fire(rule, totals, stats)
            current = totals.setdefault(rule.head.pred, set())
            fresh = produced - current
            deltas[rule.head.pred] |= fresh
        for pred in self.idb_preds:
            totals.setdefault(pred, set()).update(deltas[pred])
            stats.tuples_derived += len(deltas[pred])

        while any(deltas.values()):
            stats.iterations += 1
            new_deltas: Facts = {p: set() for p in self.idb_preds}
            old: Facts = {
                p: totals.get(p, set()) - deltas.get(p, set()) for p in self.idb_preds
            }
            for rule in self.idb_rules:
                atoms = [lit for lit in rule.body if isinstance(lit, Atom)]
                rec_positions = [
                    i for i, a in enumerate(atoms) if a.pred in self.idb_preds
                ]
                for _k, rec_pos in enumerate(rec_positions):
                    overrides: list[dict[str, set[tuple]] | None] = []
                    for i, atom in enumerate(atoms):
                        if atom.pred not in self.idb_preds:
                            overrides.append(None)
                            continue
                        if i < rec_pos:
                            overrides.append({atom.pred: totals.get(atom.pred, set())})
                        elif i == rec_pos:
                            overrides.append({atom.pred: deltas.get(atom.pred, set())})
                        else:
                            overrides.append({atom.pred: old.get(atom.pred, set())})
                    produced = self._fire(rule, totals, stats, overrides)
                    new_deltas[rule.head.pred] |= produced
            for pred in self.idb_preds:
                new_deltas[pred] -= totals.get(pred, set())
                totals.setdefault(pred, set()).update(new_deltas[pred])
                stats.tuples_derived += len(new_deltas[pred])
            deltas = new_deltas
        return {p: frozenset(rows) for p, rows in totals.items()}

    # -- compiled evaluation ----------------------------------------------------

    def solve_compiled(
        self,
        stats: DatalogStats | None = None,
        optimizer: str = _OPT_UNSET,
        executor: str = _OPT_UNSET,
        shard_config: object | None = _OPT_UNSET,
        *,
        options: "ExecOptions | None" = None,
    ) -> dict[str, frozenset]:
        """Evaluate through the constructor translation and the batched
        fixpoint executor (see :mod:`repro.compiler`).

        Each IDB predicate's least model is the value of its translated
        constructor application; mutually recursive predicates share one
        instantiated system, so every strongly connected component is
        solved exactly once.  ``options.executor`` names a backend in
        the :mod:`repro.compiler.executors` registry — ``"batch"``
        (columnar struct-of-arrays pipelines, the default),
        ``"rowbatch"`` (row-major batches), ``"tuple"``, or ``"sharded"``
        (hash-partitioned parallel execution; ``options.shard_config``
        tunes its worker pool) — so Datalog programs inherit every
        executor improvement unchanged.
        """
        from ..compiler.fixpoint import construct_compiled
        from .to_constructors import datalog_to_database

        options = resolve_options(
            options, "DatalogEngine.solve_compiled",
            optimizer=optimizer, executor=executor, shard_config=shard_config,
        )
        stats = stats if stats is not None else DatalogStats()
        stats.mode = "compiled"
        db, applications = datalog_to_database(self.program, self.edb)
        totals: dict[str, frozenset] = {
            pred: frozenset(rows) for pred, rows in self.edb.items()
        }
        solved: set[str] = set()
        for pred, application in applications.items():
            if pred in solved:
                continue
            result = construct_compiled(db, application, options=options)
            # Harvest every application of the instantiated system: a
            # mutually recursive clique is computed once, not per root.
            for key, rows in result.values.items():
                name = key.constructor
                if name.startswith("c_") and name[2:] in applications:
                    totals[name[2:]] = frozenset(rows)
                    solved.add(name[2:])
            stats.iterations += result.stats.iterations
            stats.tuples_derived += result.stats.tuples_derived
            stats.rule_firings += len(result.system.apps)
        return totals

    def solve(
        self,
        mode: str = "seminaive",
        stats: DatalogStats | None = None,
        executor: str = _OPT_UNSET,
        shard_config: object | None = _OPT_UNSET,
        *,
        options: "ExecOptions | None" = None,
    ) -> dict[str, frozenset]:
        options = resolve_options(
            options, "DatalogEngine.solve",
            executor=executor, shard_config=shard_config,
        )
        if mode == "naive":
            return self.solve_naive(stats)
        if mode == "seminaive":
            return self.solve_seminaive(stats)
        if mode == "compiled":
            return self.solve_compiled(stats, options=options)
        raise ValueError(f"unknown mode {mode!r}")

    def query(
        self, goal: Atom, mode: str = "seminaive", stats: DatalogStats | None = None
    ) -> set[tuple]:
        """All ground instances of ``goal`` entailed by the program."""
        solution = self.solve(mode, stats)
        rows = solution.get(goal.pred, frozenset())
        out: set[tuple] = set()
        for fact in rows:
            bindings = _match_atom(goal, fact, {})
            if bindings is not None:
                out.add(fact)
        return out
