"""A small Datalog/PROLOG-clause parser.

Accepts the function-free fragment of section 3.4:

    ahead(X, Y) :- infront(X, Y).
    ahead(X, Y) :- infront(X, Z), ahead(Z, Y).
    infront(table, chair).
    bigger(X, Y) :- size(X, SX), size(Y, SY), SX > SY.

Variables start with an upper-case letter or ``_``; constants are
lower-case symbols, integers, or double-quoted strings.  ``%`` starts a
line comment.  Comparison operators use PROLOG spellings
(``=``, ``\\=``, ``<``, ``=<``, ``>``, ``>=``).
"""

from __future__ import annotations

import re

from ..errors import DBPLSyntaxError
from .ast import Atom, Comparison, Const, Literal, Program, Rule, Term, Var

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+|%[^\n]*)
  | (?P<implies>:-)
  | (?P<cmp>=<|>=|\\=|<|>|=)
  | (?P<lparen>\()
  | (?P<rparen>\))
  | (?P<comma>,)
  | (?P<dot>\.)
  | (?P<number>-?\d+)
  | (?P<string>"[^"]*")
  | (?P<name>[A-Za-z_][A-Za-z0-9_]*)
    """,
    re.VERBOSE,
)


def _tokenize(text: str) -> list[tuple[str, str, int]]:
    tokens: list[tuple[str, str, int]] = []
    pos = 0
    line = 1
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise DBPLSyntaxError(f"unexpected character {text[pos]!r}", line)
        kind = match.lastgroup
        value = match.group()
        line += value.count("\n")
        pos = match.end()
        if kind != "ws":
            tokens.append((kind, value, line))
    tokens.append(("eof", "", line))
    return tokens


class _Parser:
    def __init__(self, text: str) -> None:
        self.tokens = _tokenize(text)
        self.index = 0

    def peek(self) -> tuple[str, str, int]:
        return self.tokens[self.index]

    def next(self) -> tuple[str, str, int]:
        token = self.tokens[self.index]
        self.index += 1
        return token

    def expect(self, kind: str) -> str:
        actual_kind, value, line = self.next()
        if actual_kind != kind:
            raise DBPLSyntaxError(
                f"expected {kind}, got {value!r}", line
            )
        return value

    # -- grammar --------------------------------------------------------------

    def program(self) -> Program:
        rules: list[Rule] = []
        while self.peek()[0] != "eof":
            rules.append(self.clause())
        return Program(tuple(rules))

    def clause(self) -> Rule:
        head = self.atom()
        kind, _value, _line = self.peek()
        body: tuple[Literal, ...] = ()
        if kind == "implies":
            self.next()
            body = self.body()
        self.expect("dot")
        return Rule(head, body)

    def body(self) -> tuple[Literal, ...]:
        literals = [self.literal()]
        while self.peek()[0] == "comma":
            self.next()
            literals.append(self.literal())
        return tuple(literals)

    def literal(self) -> Literal:
        # Either pred(...) or a comparison  term op term.
        kind, value, line = self.peek()
        if kind == "name" and self.tokens[self.index + 1][0] == "lparen":
            return self.atom()
        left = self.term()
        op_kind, op, op_line = self.next()
        if op_kind != "cmp":
            raise DBPLSyntaxError(f"expected comparison operator, got {op!r}", op_line)
        right = self.term()
        return Comparison(op, left, right)

    def atom(self) -> Atom:
        kind, name, line = self.next()
        if kind != "name":
            raise DBPLSyntaxError(f"expected predicate name, got {name!r}", line)
        if name[0].isupper() or name[0] == "_":
            raise DBPLSyntaxError(
                f"predicate names must start lower-case: {name!r}", line
            )
        self.expect("lparen")
        terms = [self.term()]
        while self.peek()[0] == "comma":
            self.next()
            terms.append(self.term())
        self.expect("rparen")
        return Atom(name, tuple(terms))

    def term(self) -> Term:
        kind, value, line = self.next()
        if kind == "number":
            return Const(int(value))
        if kind == "string":
            return Const(value[1:-1])
        if kind == "name":
            if value[0].isupper() or value[0] == "_":
                return Var(value)
            return Const(value)
        raise DBPLSyntaxError(f"expected a term, got {value!r}", line)


def parse_program(text: str) -> Program:
    """Parse Datalog source text into a :class:`Program`."""
    return _Parser(text).program()


def parse_atom(text: str) -> Atom:
    """Parse a single atom, e.g. a query goal ``ahead(table, X)``."""
    parser = _Parser(text.rstrip().rstrip(".") + " .")
    atom = parser.atom()
    parser.expect("dot")
    return atom
