"""A small Datalog/PROLOG-clause parser.

Accepts the function-free fragment of section 3.4:

    ahead(X, Y) :- infront(X, Y).
    ahead(X, Y) :- infront(X, Z), ahead(Z, Y).
    infront(table, chair).
    bigger(X, Y) :- size(X, SX), size(Y, SY), SX > SY.

Variables start with an upper-case letter or ``_``; constants are
lower-case symbols, integers, or double-quoted strings.  ``%`` starts a
line comment.  Comparison operators use PROLOG spellings
(``=``, ``\\=``, ``<``, ``=<``, ``>``, ``>=``); ``\\+`` negates a body
atom (parsed for the static analyzer — the positive engines reject it).

The parser tracks line *and* column and attaches source spans to every
Atom/Comparison/Rule (see :mod:`repro.analysis.diagnostics`), so both
syntax errors and analyzer diagnostics point at real positions.
"""

from __future__ import annotations

import re

from ..analysis.diagnostics import Span, set_span
from ..errors import DBPLSyntaxError
from .ast import Atom, Comparison, Const, Literal, Program, Rule, Term, Var

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+|%[^\n]*)
  | (?P<implies>:-)
  | (?P<negate>\\\+)
  | (?P<cmp>=<|>=|\\=|<|>|=)
  | (?P<lparen>\()
  | (?P<rparen>\))
  | (?P<comma>,)
  | (?P<dot>\.)
  | (?P<number>-?\d+)
  | (?P<string>"[^"]*")
  | (?P<name>[A-Za-z_][A-Za-z0-9_]*)
    """,
    re.VERBOSE,
)

#: (kind, value, line, column) — 1-based position of the token start.
_Token = tuple[str, str, int, int]


def _tokenize(text: str) -> list[_Token]:
    tokens: list[_Token] = []
    pos = 0
    line = 1
    col = 1
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise DBPLSyntaxError(f"unexpected character {text[pos]!r}", line, col)
        kind = match.lastgroup
        value = match.group()
        if kind != "ws":
            tokens.append((kind, value, line, col))
        newlines = value.count("\n")
        if newlines:
            line += newlines
            col = len(value) - value.rfind("\n")
        else:
            col += len(value)
        pos = match.end()
    tokens.append(("eof", "", line, col))
    return tokens


class _Parser:
    def __init__(self, text: str) -> None:
        self.tokens = _tokenize(text)
        self.index = 0

    def peek(self) -> _Token:
        return self.tokens[self.index]

    def next(self) -> _Token:
        token = self.tokens[self.index]
        self.index += 1
        return token

    def expect(self, kind: str) -> str:
        actual_kind, value, line, col = self.next()
        if actual_kind != kind:
            raise DBPLSyntaxError(f"expected {kind}, got {value!r}", line, col)
        return value

    def _mark(self, start: _Token, node):
        """Attach the span ``start`` .. last-consumed-token to ``node``."""
        end = self.tokens[self.index - 1] if self.index else start
        set_span(node, Span(start[2], start[3], end[2], end[3] + len(end[1])))
        return node

    # -- grammar --------------------------------------------------------------

    def program(self) -> Program:
        rules: list[Rule] = []
        while self.peek()[0] != "eof":
            rules.append(self.clause())
        return Program(tuple(rules))

    def clause(self) -> Rule:
        start = self.peek()
        head = self.atom()
        kind = self.peek()[0]
        body: tuple[Literal, ...] = ()
        if kind == "implies":
            self.next()
            body = self.body()
        self.expect("dot")
        return self._mark(start, Rule(head, body))

    def body(self) -> tuple[Literal, ...]:
        literals = [self.literal()]
        while self.peek()[0] == "comma":
            self.next()
            literals.append(self.literal())
        return tuple(literals)

    def literal(self) -> Literal:
        # Negated atom, positive atom, or a comparison  term op term.
        start = self.peek()
        if start[0] == "negate":
            self.next()
            inner = self.atom()
            return self._mark(
                start, Atom(inner.pred, inner.terms, negated=True)
            )
        if start[0] == "name" and self.tokens[self.index + 1][0] == "lparen":
            return self.atom()
        left = self.term()
        op_kind, op, op_line, op_col = self.next()
        if op_kind != "cmp":
            raise DBPLSyntaxError(
                f"expected comparison operator, got {op!r}", op_line, op_col
            )
        right = self.term()
        return self._mark(start, Comparison(op, left, right))

    def atom(self) -> Atom:
        start = self.next()
        kind, name, line, col = start
        if kind != "name":
            raise DBPLSyntaxError(f"expected predicate name, got {name!r}", line, col)
        if name[0].isupper() or name[0] == "_":
            raise DBPLSyntaxError(
                f"predicate names must start lower-case: {name!r}", line, col
            )
        self.expect("lparen")
        terms = [self.term()]
        while self.peek()[0] == "comma":
            self.next()
            terms.append(self.term())
        self.expect("rparen")
        return self._mark(start, Atom(name, tuple(terms)))

    def term(self) -> Term:
        token = self.next()
        kind, value, line, col = token
        if kind == "number":
            return self._mark(token, Const(int(value)))
        if kind == "string":
            return self._mark(token, Const(value[1:-1]))
        if kind == "name":
            if value[0].isupper() or value[0] == "_":
                return self._mark(token, Var(value))
            return self._mark(token, Const(value))
        raise DBPLSyntaxError(f"expected a term, got {value!r}", line, col)


def parse_program(text: str) -> Program:
    """Parse Datalog source text into a :class:`Program`."""
    return _Parser(text).program()


def parse_atom(text: str) -> Atom:
    """Parse a single atom, e.g. a query goal ``ahead(table, X)``."""
    parser = _Parser(text.rstrip().rstrip(".") + " .")
    atom = parser.atom()
    parser.expect("dot")
    return atom
