"""Function-free Horn clauses (Datalog): the paper's PROLOG fragment.

Section 3.4 proves the constructor mechanism as powerful as function-free
PROLOG without cut, fail, and negation — i.e. positive Datalog, possibly
with comparison literals.  This AST is shared by the bottom-up Datalog
engine (an *independent* oracle for the constructor engines) and by the
proof-oriented SLD/tabled engines of :mod:`repro.prolog`.

Conventions follow PROLOG: variables start with an upper-case letter or
underscore; everything else is a constant.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union


@dataclass(frozen=True)
class Var:
    """A logic variable (X, Y, Rest, _)."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Const:
    """A constant: symbol, number, or quoted string."""

    value: object

    def __str__(self) -> str:
        value = self.value
        if isinstance(value, str) and (not value or not value[0].islower()):
            return f'"{value}"'
        return str(value)


Term = Union[Var, Const]


@dataclass(frozen=True)
class Atom:
    """``pred(t1, ..., tn)``, or its negation ``\\+ pred(t1, ..., tn)``.

    Negated atoms are parsed (PROLOG ``\\+`` spelling) so the static
    analyzer can check stratification and negation safety; the positive
    bottom-up engines reject them at their analysis gate (section 3.4
    covers the *positive* fragment only).
    """

    pred: str
    terms: tuple[Term, ...]
    negated: bool = False

    @property
    def arity(self) -> int:
        return len(self.terms)

    def variables(self) -> set[str]:
        return {t.name for t in self.terms if isinstance(t, Var)}

    def is_ground(self) -> bool:
        return all(isinstance(t, Const) for t in self.terms)

    def __str__(self) -> str:
        text = f"{self.pred}({', '.join(str(t) for t in self.terms)})"
        return f"\\+ {text}" if self.negated else text


@dataclass(frozen=True)
class Comparison:
    """A built-in comparison literal: ``X < Y``, ``X \\= a``.

    op in {=, \\=, <, =<, >, >=} (PROLOG spellings).
    """

    op: str
    left: Term
    right: Term

    def variables(self) -> set[str]:
        out = set()
        if isinstance(self.left, Var):
            out.add(self.left.name)
        if isinstance(self.right, Var):
            out.add(self.right.name)
        return out

    def __str__(self) -> str:
        return f"{self.left} {self.op} {self.right}"


Literal = Union[Atom, Comparison]


@dataclass(frozen=True)
class Rule:
    """``head :- body.`` — a definite clause.  Facts have an empty body."""

    head: Atom
    body: tuple[Literal, ...] = ()

    @property
    def is_fact(self) -> bool:
        return not self.body

    def variables(self) -> set[str]:
        out = self.head.variables()
        for lit in self.body:
            out |= lit.variables()
        return out

    def positive_body_variables(self) -> set[str]:
        """Variables bound by a positive body atom (the safe binders)."""
        bound: set[str] = set()
        for lit in self.body:
            if isinstance(lit, Atom) and not lit.negated:
                bound |= lit.variables()
        return bound

    def is_range_restricted(self) -> bool:
        """Every head variable appears in a positive body atom (safety)."""
        if self.is_fact:
            return self.head.is_ground()
        return self.head.variables() <= self.positive_body_variables()

    def __str__(self) -> str:
        if self.is_fact:
            return f"{self.head}."
        return f"{self.head} :- {', '.join(str(l) for l in self.body)}."


@dataclass(frozen=True)
class Program:
    """An ordered collection of rules (clause order matters to SLD)."""

    rules: tuple[Rule, ...]

    def predicates(self) -> set[str]:
        return {rule.head.pred for rule in self.rules}

    def idb_predicates(self) -> set[str]:
        """Predicates defined by at least one proper rule."""
        return {r.head.pred for r in self.rules if not r.is_fact}

    def rules_for(self, pred: str) -> tuple[Rule, ...]:
        return tuple(r for r in self.rules if r.head.pred == pred)

    def body_predicates(self) -> set[str]:
        out: set[str] = set()
        for rule in self.rules:
            for lit in rule.body:
                if isinstance(lit, Atom):
                    out.add(lit.pred)
        return out

    def edb_predicates(self) -> set[str]:
        """Predicates used in bodies but never defined by a rule head."""
        return self.body_predicates() - self.predicates()

    def __str__(self) -> str:
        return "\n".join(str(r) for r in self.rules)


def mkatom(pred: str, *terms: object) -> Atom:
    """Convenience: strings starting upper-case/underscore become Vars."""
    converted: list[Term] = []
    for t in terms:
        if isinstance(t, (Var, Const)):
            converted.append(t)
        elif isinstance(t, str) and t and (t[0].isupper() or t[0] == "_"):
            converted.append(Var(t))
        else:
            converted.append(Const(t))
    return Atom(pred, tuple(converted))
