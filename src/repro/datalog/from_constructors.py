"""Constructors -> Datalog: the other direction of the section 3.4 lemma.

An instantiated constructor system whose bodies stay inside the positive
existential fragment (conjunctions of equalities/comparisons, SOME
quantifiers, OR — but no NOT, ALL, selected ranges, or inline queries)
translates to a safe positive Datalog program:

* each fixpoint variable (AppKey) becomes an IDB predicate ``app_k``;
* each database relation referenced as a range becomes an EDB predicate
  carrying the relation's current rows as facts;
* each branch becomes one rule per OR-alternative: bindings turn into
  body atoms, equalities merge logic variables (union-find), other
  comparisons become comparison literals, targets become the head.

The translation is used by the tests to cross-check the constructor
engines against the independent Datalog engine and the SLD/tabled proof
engines, and by benchmark E7.
"""

from __future__ import annotations

from itertools import count, product

from ..calculus import ast
from ..constructors.instantiate import AppKey, InstantiatedSystem
from ..errors import TranslationError
from ..relational import Database
from .ast import Atom, Comparison, Const, Literal, Program, Rule, Var

_CMP_OPS = {"=": "=", "<>": "\\=", "<": "<", "<=": "=<", ">": ">", ">=": ">="}


class _UnionFind:
    """Union-find over logic-variable names with optional constant values."""

    def __init__(self) -> None:
        self.parent: dict[str, str] = {}
        self.constant: dict[str, object] = {}

    def find(self, name: str) -> str:
        root = name
        while self.parent.get(root, root) != root:
            root = self.parent[root]
        while self.parent.get(name, name) != name:
            self.parent[name], name = root, self.parent[name]
        return root

    def union(self, a: str, b: str) -> bool:
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return True
        ca, cb = self.constant.get(ra), self.constant.get(rb)
        if ca is not None and cb is not None and ca != cb:
            return False  # contradictory equalities: the rule never fires
        self.parent[ra] = rb
        if ca is not None:
            self.constant[rb] = ca
        return True

    def bind_const(self, name: str, value: object) -> bool:
        root = self.find(name)
        known = self.constant.get(root)
        if known is not None and known != value:
            return False
        self.constant[root] = value
        return True

    def resolve(self, name: str):
        root = self.find(name)
        if root in self.constant:
            return Const(self.constant[root])
        return Var(root.upper() if not root[0].isupper() else root)


def _flatten_pred(pred: ast.Pred) -> list[list[ast.Pred]]:
    """DNF-style flattening into alternative conjunct lists.

    Supports TRUE, Cmp, And, Or, and (positively) Some; everything else
    is outside the translatable fragment.
    """
    if isinstance(pred, ast.TruePred):
        return [[]]
    if isinstance(pred, ast.Cmp):
        return [[pred]]
    if isinstance(pred, ast.Some):
        return [[pred]]
    if isinstance(pred, ast.And):
        alternatives: list[list[ast.Pred]] = [[]]
        for part in pred.parts:
            expanded = _flatten_pred(part)
            alternatives = [a + b for a, b in product(alternatives, expanded)]
        return alternatives
    if isinstance(pred, ast.Or):
        out: list[list[ast.Pred]] = []
        for part in pred.parts:
            out.extend(_flatten_pred(part))
        return out
    raise TranslationError(
        f"predicate {type(pred).__name__} is outside the positive "
        f"existential fragment of the section 3.4 lemma"
    )


class _SystemTranslator:
    def __init__(self, db: Database, system: InstantiatedSystem) -> None:
        self.db = db
        self.system = system
        self.app_pred: dict[AppKey, str] = {
            key: f"app{i}" for i, key in enumerate(system.apps)
        }
        self.edb: dict[str, set[tuple]] = {}
        self.rules: list[Rule] = []
        self._fresh = count()

    # -- range handling --------------------------------------------------------

    def _range_atom_pred(self, rng: ast.RangeExpr) -> tuple[str, int]:
        """(predicate name, arity) for a binding range; registers EDB facts."""
        if isinstance(rng, ast.RelRef):
            relation = self.db.relation(rng.name)
            pred = rng.name.lower()
            self.edb.setdefault(pred, set()).update(relation.raw())
            return pred, relation.element_type.arity
        if isinstance(rng, ast.ApplyVar):
            key: AppKey = rng.token  # type: ignore[assignment]
            if key not in self.app_pred:
                raise TranslationError(f"foreign fixpoint variable {key!r}")
            return self.app_pred[key], rng.schema.arity
        raise TranslationError(
            f"range {type(rng).__name__} is outside the translatable fragment "
            f"(only base relations and fixpoint variables are supported)"
        )

    # -- branch translation -------------------------------------------------------

    def translate_branch(self, head_pred: str, branch: ast.Branch) -> None:
        for conjuncts in _flatten_pred(branch.pred):
            rule = self._translate_conjunction(head_pred, branch, conjuncts)
            if rule is not None:
                self.rules.append(rule)

    def _translate_conjunction(
        self,
        head_pred: str,
        branch: ast.Branch,
        conjuncts: list[ast.Pred],
    ) -> Rule | None:
        uf = _UnionFind()
        atoms: list[tuple[str, list[str]]] = []
        schemas: dict[str, ast.RangeExpr] = {}
        attr_var: dict[tuple[str, str], str] = {}

        def bind_range(var: str, rng: ast.RangeExpr) -> None:
            pred, arity = self._range_atom_pred(rng)
            names = [f"{var}_{i}" for i in range(arity)]
            atoms.append((pred, names))
            schema = self._schema_of(rng)
            for i, attr in enumerate(schema.attribute_names):
                attr_var[(var, attr)] = names[i]

        for binding in branch.bindings:
            bind_range(binding.var, binding.range)

        comparisons: list[ast.Cmp] = []
        work = list(conjuncts)
        while work:
            item = work.pop(0)
            if isinstance(item, ast.Some):
                for qvar in item.vars:
                    bind_range(qvar, item.range)
                work = (
                    [p for alt in _flatten_pred(item.pred)[:1] for p in alt] + work
                    if len(_flatten_pred(item.pred)) == 1
                    else _raise_nested_or(item)
                )
            elif isinstance(item, ast.Cmp):
                comparisons.append(item)
            elif isinstance(item, ast.TruePred):
                continue
            else:  # pragma: no cover - guarded by _flatten_pred
                raise TranslationError(f"untranslatable conjunct {item!r}")

        def term_name(term: ast.Term) -> str | None:
            """Union-find key for an AttrRef, or None for constants."""
            if isinstance(term, ast.AttrRef):
                key = (term.var, term.attr)
                if key not in attr_var:
                    raise TranslationError(
                        f"reference to unbound variable {term.var}.{term.attr}"
                    )
                return attr_var[key]
            return None

        # Process equalities first so comparisons see merged variables.
        feasible = True
        residual: list[ast.Cmp] = []
        for cmp in comparisons:
            left = term_name(cmp.left)
            right = term_name(cmp.right)
            if cmp.op == "=" and left is not None and right is not None:
                feasible &= uf.union(left, right)
            elif cmp.op == "=" and left is not None and isinstance(cmp.right, ast.Const):
                feasible &= uf.bind_const(left, cmp.right.value)
            elif cmp.op == "=" and right is not None and isinstance(cmp.left, ast.Const):
                feasible &= uf.bind_const(right, cmp.left.value)
            else:
                residual.append(cmp)
        if not feasible:
            return None  # contradictory rule: contributes nothing

        def resolve_term(term: ast.Term):
            if isinstance(term, ast.Const):
                return Const(term.value)
            name = term_name(term)
            if name is None:
                raise TranslationError(f"untranslatable term {term!r}")
            return uf.resolve(name)

        body: list[Literal] = []
        for pred, names in atoms:
            body.append(Atom(pred, tuple(uf.resolve(n) for n in names)))
        for cmp in residual:
            if cmp.op not in _CMP_OPS:
                raise TranslationError(f"operator {cmp.op} not translatable")
            body.append(
                Comparison(_CMP_OPS[cmp.op], resolve_term(cmp.left), resolve_term(cmp.right))
            )

        if branch.targets is None:
            var = branch.bindings[0].var
            schema = self._schema_of(branch.bindings[0].range)
            head_terms = tuple(
                uf.resolve(attr_var[(var, attr)]) for attr in schema.attribute_names
            )
        else:
            head_terms = tuple(resolve_term(t) for t in branch.targets)
        return Rule(Atom(head_pred, head_terms), tuple(body))

    def _schema_of(self, rng: ast.RangeExpr):
        if isinstance(rng, ast.RelRef):
            return self.db.relation(rng.name).element_type
        if isinstance(rng, ast.ApplyVar):
            return rng.schema
        raise TranslationError(f"no schema for range {rng!r}")

    def translate(self) -> tuple[Program, dict[str, set[tuple]], str]:
        for key, app in self.system.apps.items():
            for branch in app.body.branches:
                self.translate_branch(self.app_pred[key], branch)
        return (
            Program(tuple(self.rules)),
            self.edb,
            self.app_pred[self.system.root],
        )


def _raise_nested_or(item) -> list:
    raise TranslationError(
        "disjunction nested under SOME is not supported by the translator; "
        "lift it with rewrite.unnest_query first"
    )


def system_to_program(
    db: Database, system: InstantiatedSystem
) -> tuple[Program, dict[str, set[tuple]], str]:
    """Translate an instantiated constructor system to Datalog.

    Returns ``(program, edb_facts, root_predicate)`` such that the least
    model of ``root_predicate`` equals the constructed relation.
    """
    return _SystemTranslator(db, system).translate()
