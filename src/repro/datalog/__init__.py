"""Datalog bridge: Horn-clause AST, parser, bottom-up engine, translators."""

from .ast import Atom, Comparison, Const, Literal, Program, Rule, Term, Var, mkatom
from .engine import DatalogEngine, DatalogStats
from .from_constructors import system_to_program
from .parser import parse_atom, parse_program
from .to_constructors import datalog_to_database

__all__ = [
    "Atom",
    "Comparison",
    "Const",
    "DatalogEngine",
    "DatalogStats",
    "Literal",
    "Program",
    "Rule",
    "Term",
    "Var",
    "datalog_to_database",
    "mkatom",
    "parse_atom",
    "parse_program",
    "system_to_program",
]
