"""Datalog -> constructors: one direction of the section 3.4 lemma.

"The constructor mechanism is as powerful as function-free PROLOG without
cut, fail, and negation."  Constructively: every safe positive Datalog
program maps to a family of constructors such that evaluating the
constructor application for a predicate yields exactly the predicate's
least model.

Mapping (following the paper's remark that a constructor based on a join
of several base relations "grows out of" an empty base relation):

* every predicate ``p/n`` gets a keyless relation type with ANY-typed
  attributes ``a0..a{n-1}``;
* every EDB predicate becomes a database relation holding its facts;
* every IDB predicate ``p`` gets an empty base relation ``p__base`` and a
  constructor ``c_p`` whose branches are the rules for ``p``:
  body atoms become range bindings (EDB atoms over the database relation,
  IDB atoms over the recursive application ``q__base{c_q}``), repeated
  variables and constants become equality conjuncts, comparison literals
  become comparisons, and the head's argument list becomes the target
  list.
"""

from __future__ import annotations

from ..calculus import ast
from ..constructors import define_constructor
from ..errors import TranslationError
from ..relational import Database
from ..types import ANY, Field, RecordType, RelationType
from .ast import Atom, Comparison, Const, Program, Rule

_CMP_OPS = {"=": "=", "\\=": "<>", "<": "<", "=<": "<=", ">": ">", ">=": ">="}


def _predicate_arities(program: Program, edb: dict | None) -> dict[str, int]:
    arities: dict[str, int] = {}

    def note(pred: str, arity: int) -> None:
        known = arities.setdefault(pred, arity)
        if known != arity:
            raise TranslationError(
                f"predicate {pred} used with arities {known} and {arity}"
            )

    for rule in program.rules:
        note(rule.head.pred, rule.head.arity)
        for lit in rule.body:
            if isinstance(lit, Atom):
                note(lit.pred, lit.arity)
    for pred, rows in (edb or {}).items():
        for row in rows:
            note(pred, len(row))
            break
    return arities


def _relation_type(pred: str, arity: int) -> RelationType:
    fields = tuple(Field(f"a{i}", ANY) for i in range(arity))
    return RelationType(f"{pred}_rel", RecordType(f"{pred}_rec", fields), ())


def _rule_to_branch(
    rule: Rule,
    idb: set[str],
    formal_of: dict[str, str],
) -> ast.Branch:
    """Translate one rule into one constructor-body branch.

    ``formal_of`` maps the head predicate's base-relation name to the
    constructor's formal name (so recursion goes through the formal, per
    the constructor discipline); other IDB predicates are referenced by
    their own application expressions.
    """
    atoms = [lit for lit in rule.body if isinstance(lit, Atom)]
    comparisons = [lit for lit in rule.body if isinstance(lit, Comparison)]

    bindings: list[ast.Binding] = []
    first_site: dict[str, ast.AttrRef] = {}
    conjuncts: list[ast.Pred] = []
    for i, atom in enumerate(atoms):
        var = f"t{i}"
        if atom.pred in idb:
            base_name = formal_of.get(atom.pred, f"{atom.pred}__base")
            rng: ast.RangeExpr = ast.Constructed(
                ast.RelRef(base_name), f"c_{atom.pred}", ()
            )
        else:
            rng = ast.RelRef(atom.pred)
        bindings.append(ast.Binding(var, rng))
        for j, term in enumerate(atom.terms):
            ref = ast.AttrRef(var, f"a{j}")
            if isinstance(term, Const):
                conjuncts.append(ast.Cmp("=", ref, ast.Const(term.value)))
            else:
                seen = first_site.get(term.name)
                if seen is None:
                    first_site[term.name] = ref
                else:
                    conjuncts.append(ast.Cmp("=", ref, seen))

    def term_to_ast(term) -> ast.Term:
        if isinstance(term, Const):
            return ast.Const(term.value)
        site = first_site.get(term.name)
        if site is None:
            raise TranslationError(
                f"variable {term.name} of rule {rule} is unbound (unsafe rule)"
            )
        return site

    for cmp in comparisons:
        conjuncts.append(
            ast.Cmp(_CMP_OPS[cmp.op], term_to_ast(cmp.left), term_to_ast(cmp.right))
        )

    targets = tuple(term_to_ast(t) for t in rule.head.terms)
    pred = ast.And(tuple(conjuncts)) if conjuncts else ast.TRUE
    if len(conjuncts) == 1:
        pred = conjuncts[0]
    return ast.Branch(tuple(bindings), pred, targets)


def datalog_to_database(
    program: Program, edb: dict[str, set[tuple]] | None = None
) -> tuple[Database, dict[str, ast.Constructed]]:
    """Build a database + constructors equivalent to ``program``.

    Returns the database and, for each IDB predicate, the application
    expression whose construction yields the predicate's least model.
    """
    arities = _predicate_arities(program, edb)
    idb = program.idb_predicates()
    db = Database("datalog")

    rel_types = {pred: _relation_type(pred, arity) for pred, arity in arities.items()}

    # EDB relations: explicit facts plus inline program facts.
    facts: dict[str, set[tuple]] = {p: set(rows) for p, rows in (edb or {}).items()}
    for rule in program.rules:
        if rule.is_fact:
            if not rule.head.is_ground():
                raise TranslationError(f"non-ground fact: {rule}")
            facts.setdefault(rule.head.pred, set()).add(
                tuple(t.value for t in rule.head.terms)  # type: ignore[union-attr]
            )
    for pred, _arity in arities.items():
        if pred in idb:
            db.declare(f"{pred}__base", rel_types[pred], ())
            if pred in facts and facts[pred]:
                # Facts for an IDB predicate seed its base relation.
                db[f"{pred}__base"].assign(facts[pred])
        else:
            db.declare(pred, rel_types[pred], facts.get(pred, set()))

    applications: dict[str, ast.Constructed] = {}
    for pred in sorted(idb):
        branches = [
            # Identity branch: the base relation (seed facts) is included.
            ast.Branch((ast.Binding("r", ast.RelRef("Rel")),), ast.TRUE, None)
        ]
        for rule in program.rules_for(pred):
            if rule.is_fact:
                continue
            branches.append(_rule_to_branch(rule, idb, {pred: "Rel"}))
        define_constructor(
            db,
            name=f"c_{pred}",
            formal_rel="Rel",
            rel_type=rel_types[pred],
            result_type=rel_types[pred],
            body=ast.Query(tuple(branches)),
        )
        applications[pred] = ast.Constructed(
            ast.RelRef(f"{pred}__base"), f"c_{pred}", ()
        )
    return db, applications
