"""Selectors: named restriction predicates over relations (section 2.3).

A selector "factors out" a condition on a relation and makes it available
uniformly — to queries (``Rel[sel]`` as a range), to checked assignment
(``Rel[sel] := rex`` enforcing the condition on every inserted tuple,
Fig. 1), and to the optimizer (which can reason about the predicate
symbolically).  The paper's examples:

    SELECTOR refint FOR Rel: infrontrel();
    BEGIN EACH r IN Rel: SOME r1, r2 IN Objects
          (r.front = r1.part AND r.back = r2.part)
    END refint

    SELECTOR hidden_by (Obj: parttype) FOR Rel: infrontrel;
    BEGIN EACH r IN Rel: r.front = Obj END hidden_by

Selectors may take scalar parameters (``Obj``) and relation parameters;
inside the body the formal base relation name (``Rel``) and the formal
parameters are in scope, along with every database relation.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass

from ..calculus import ast
from ..calculus.evaluator import Env, Evaluator, RangeValue
from ..errors import ArityError, IntegrityError
from ..relational import Database, Relation
from ..types import RelationType, Type


@dataclass(frozen=True)
class Parameter:
    """A formal parameter of a selector or constructor."""

    name: str
    type: Type

    @property
    def is_relation(self) -> bool:
        return isinstance(self.type, RelationType)


class Selector:
    """A named, possibly parameterized restriction predicate."""

    def __init__(
        self,
        name: str,
        formal_rel: str,
        rel_type: RelationType,
        var: str,
        pred: ast.Pred,
        params: Sequence[Parameter] = (),
    ) -> None:
        self.name = name
        self.formal_rel = formal_rel
        self.rel_type = rel_type
        self.var = var
        self.pred = pred
        self.params = tuple(params)

    # -- parameter binding ---------------------------------------------------

    def bind_args(
        self, evaluator: Evaluator, args: tuple[ast.Argument, ...], env: Env
    ) -> dict[str, object]:
        """Evaluate actual arguments and map them onto formal names."""
        if len(args) != len(self.params):
            raise ArityError(
                f"selector {self.name} expects {len(self.params)} argument(s), "
                f"got {len(args)}"
            )
        bound: dict[str, object] = {}
        for formal, actual in zip(self.params, args):
            if formal.is_relation:
                if not isinstance(
                    actual,
                    (ast.RelRef, ast.Selected, ast.Constructed, ast.QueryRange, ast.ApplyVar),
                ):
                    raise ArityError(
                        f"selector {self.name}: parameter {formal.name} is "
                        f"relation-typed but got a scalar argument"
                    )
                bound[formal.name] = evaluator.resolve_range(actual, env)
            else:
                value = evaluator.eval_term(actual, env)  # type: ignore[arg-type]
                formal.type.check(value, context=f"{self.name}({formal.name})")
                bound[formal.name] = value
        return bound

    # -- evaluation --------------------------------------------------------------

    def apply_range(
        self, evaluator: Evaluator, node: ast.Selected, env: Env
    ) -> RangeValue:
        """Evaluate ``base[self(args)]`` as a range (called by the evaluator)."""
        base = evaluator.resolve_range(node.base, env)
        bound = self.bind_args(evaluator, node.args, env)
        return RangeValue(self.filter_rows(evaluator.db, base, bound), base.schema)

    def filter_rows(
        self,
        db: Database,
        base: RangeValue,
        bound_params: dict[str, object],
    ) -> set[tuple]:
        """The selected subset of ``base`` under the bound parameters."""
        params = dict(bound_params)
        params[self.formal_rel] = base
        sub = Evaluator(db, params=params)
        out: set[tuple] = set()
        for row in base.rows:
            if sub.eval_pred(self.pred, {self.var: (row, base.schema)}):
                out.add(row)
        return out

    def admits(
        self,
        db: Database,
        candidate: RangeValue,
        bound_params: dict[str, object],
    ) -> tuple | None:
        """First tuple of ``candidate`` violating the predicate, or None.

        The formal base relation is bound to the *candidate* value, per
        the paper's expansion of ``Rel[sel] := rex`` (the condition is
        checked against the incoming value rex).
        """
        params = dict(bound_params)
        params[self.formal_rel] = candidate
        sub = Evaluator(db, params=params)
        for row in candidate.rows:
            if not sub.eval_pred(self.pred, {self.var: (row, candidate.schema)}):
                return row
        return None

    def __repr__(self) -> str:  # pragma: no cover - display only
        params = ", ".join(f"{p.name}: {p.type.name}" for p in self.params)
        return f"<Selector {self.name}({params}) FOR {self.formal_rel}: {self.rel_type.name}>"


def define_selector(
    db: Database,
    name: str,
    formal_rel: str,
    rel_type: RelationType,
    var: str,
    pred: ast.Pred,
    params: Sequence[Parameter] = (),
) -> Selector:
    """Define a selector and register it with the database."""
    selector = Selector(name, formal_rel, rel_type, var, pred, params)
    db.register_selector(selector)
    return selector


class SelectedRelation:
    """The selected-relation variable ``Rel[sel(args)]`` of Fig. 1.

    Reading yields the selected subset; assigning enforces the selector
    predicate on the right-hand side (checked assignment), raising
    :class:`IntegrityError` on the first violating tuple.
    """

    def __init__(
        self,
        db: Database,
        relation: Relation,
        selector: Selector,
        args: tuple[object, ...] = (),
    ) -> None:
        self.db = db
        self.relation = relation
        self.selector = selector
        self.args = tuple(args)

    def _bound_params(self) -> dict[str, object]:
        evaluator = Evaluator(self.db)
        arg_nodes = tuple(
            arg if isinstance(arg, (ast.RelRef, ast.Selected, ast.Constructed))
            else ast.Const(arg)
            for arg in self.args
        )
        return self.selector.bind_args(evaluator, arg_nodes, {})

    def value(self) -> set[tuple]:
        """Current value of the selected subrelation."""
        base = RangeValue(self.relation.raw(), self.relation.element_type)
        return self.selector.filter_rows(self.db, base, self._bound_params())

    def assign(self, rows: Iterable[tuple]) -> None:
        """``Rel[sel] := rex`` — checked assignment through the selector."""
        candidate = RangeValue(
            {r if isinstance(r, tuple) else tuple(r) for r in rows},
            self.relation.element_type,
        )
        violating = self.selector.admits(self.db, candidate, self._bound_params())
        if violating is not None:
            raise IntegrityError(
                f"assignment through selector {self.selector.name} rejected: "
                f"tuple {violating!r} violates the selection predicate"
            )
        self.relation.assign(candidate.rows)

    def insert(self, rows: Iterable[tuple]) -> None:
        """``Rel[sel] :+ rex`` — checked insertion through the selector."""
        candidate = RangeValue(
            {r if isinstance(r, tuple) else tuple(r) for r in rows},
            self.relation.element_type,
        )
        violating = self.selector.admits(self.db, candidate, self._bound_params())
        if violating is not None:
            raise IntegrityError(
                f"insertion through selector {self.selector.name} rejected: "
                f"tuple {violating!r} violates the selection predicate"
            )
        self.relation.insert(candidate.rows)


def selected(
    db: Database, relation_name: str, selector_name: str, *args: object
) -> SelectedRelation:
    """Convenience accessor: ``selected(db, "Infront", "hidden_by", "table")``."""
    return SelectedRelation(
        db, db.relation(relation_name), db.selector(selector_name), args
    )
