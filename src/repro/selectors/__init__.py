"""Selectors: named restriction predicates and checked assignment (Fig. 1)."""

from .selector import Parameter, SelectedRelation, Selector, define_selector, selected

__all__ = [
    "Parameter",
    "SelectedRelation",
    "Selector",
    "define_selector",
    "selected",
]
