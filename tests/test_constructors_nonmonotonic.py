"""Section 3.3: negation, universal quantification, and convergence.

* ``nonsense`` — rejected by the positivity check; with the check
  overridden the iteration oscillates and is detected.
* ``strange`` — rejected by the positivity check; with the check
  overridden it converges, on {0..6}, to {0, 2, 4, 6} (the paper's
  worked iteration).
"""

import pytest

from repro import paper
from repro.constructors import (
    apply_constructor,
    is_definition_positive,
)
from repro.calculus import dsl as d
from repro.errors import ConvergenceError, PositivityError
from repro.relational import Database


def card_db(values) -> Database:
    db = Database("cards")
    db.declare("Base", paper.CARDREL, [(v,) for v in values])
    return db


class TestCompilerRejection:
    def test_nonsense_rejected_at_definition(self):
        with pytest.raises(PositivityError):
            paper.define_nonsense(Database(), check_positivity=True)

    def test_strange_rejected_at_definition(self):
        with pytest.raises(PositivityError):
            paper.define_strange(Database(), check_positivity=True)

    def test_definition_positivity_predicate(self):
        db = Database()
        nonsense = paper.define_nonsense(db)
        strange = paper.define_strange(db)
        assert not is_definition_positive(nonsense)
        assert not is_definition_positive(strange)

    def test_application_rejected_without_override(self):
        db = card_db(range(7))
        paper.define_strange(db)
        with pytest.raises(PositivityError):
            apply_constructor(db, "Base", "strange")


class TestNonsenseOscillates:
    def test_oscillation_detected(self):
        db = card_db([0, 1, 2])
        paper.define_nonsense(db)
        with pytest.raises(ConvergenceError, match="oscillat"):
            apply_constructor(db, "Base", "nonsense", allow_nonmonotonic=True)

    def test_empty_base_trivially_converges(self):
        # With an empty base the body is empty: {} is a fixpoint.
        db = card_db([])
        paper.define_nonsense(db)
        result = apply_constructor(db, "Base", "nonsense", allow_nonmonotonic=True)
        assert result.rows == frozenset()


class TestStrangeConverges:
    def test_paper_limit_on_0_to_6(self):
        db = card_db(range(7))
        paper.define_strange(db)
        result = apply_constructor(db, "Base", "strange", allow_nonmonotonic=True)
        assert result.rows == {(0,), (2,), (4,), (6,)}
        assert result.stats.mode == "naive+history"

    def test_iteration_trace_matches_paper(self):
        """The intermediate states of the paper's worked iteration."""
        from repro.constructors import construct_bounded

        db = card_db(range(7))
        paper.define_strange(db)
        node = d.constructed("Base", "strange")
        assert construct_bounded(db, node, 1).rows == {(i,) for i in range(7)}
        assert construct_bounded(db, node, 2).rows == {(0,)}
        assert construct_bounded(db, node, 3).rows == {(0,), (2,), (3,), (4,), (5,), (6,)}
        assert construct_bounded(db, node, 4).rows == {(0,), (2,)}

    def test_single_element_base(self):
        db = card_db([5])
        paper.define_strange(db)
        result = apply_constructor(db, "Base", "strange", allow_nonmonotonic=True)
        # no s with 5 = s+1 in any state: {5} is the limit
        assert result.rows == {(5,)}

    def test_strange_on_two_adjacent(self):
        db = card_db([3, 4])
        paper.define_strange(db)
        result = apply_constructor(db, "Base", "strange", allow_nonmonotonic=True)
        # 4 = 3+1 is suppressed once 3 stabilizes: limit {3}
        assert result.rows == {(3,)}


class TestIterationBudget:
    def test_max_iterations_exceeded_raises(self):
        db = paper.cad_database(
            infront=[(f"n{i}", f"n{i+1}") for i in range(10)], mutual=False
        )
        with pytest.raises(ConvergenceError, match="converge"):
            apply_constructor(db, "Infront", "ahead", mode="naive",
                              max_iterations=2)
