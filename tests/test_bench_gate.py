"""The CI bench-gate: record comparison and failure semantics.

Pure-logic tests over synthetic BENCH records — no timing involved — so
the gate's behavior (1.5x wall-clock threshold, scanned-row counters,
speedup-drop detection, the --inject-slowdown self-test, baseline
refresh) is pinned deterministically in tier 1.
"""

import json
import pathlib
import sys

REPO = pathlib.Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO / "benchmarks"))

from bench_gate import compare_records, load_records, main, run_gate  # noqa: E402


def _record(name="e99", normalized=10.0, metrics=None):
    return {
        "schema": 1,
        "experiment": name,
        "elapsed_s": normalized / 100.0,
        "calibration_s": 0.01,
        "normalized": normalized,
        "metrics": metrics or {},
    }


class TestCompareRecords:
    def test_identical_records_pass(self):
        base = _record()
        assert compare_records(base, dict(base), threshold=1.5) == []

    def test_slowdown_within_threshold_passes(self):
        base = _record(normalized=10.0)
        cur = _record(normalized=14.0)
        assert compare_records(base, cur, threshold=1.5) == []

    def test_wall_clock_regression_fails(self):
        base = _record(normalized=10.0)
        cur = _record(normalized=20.0)
        failures = compare_records(base, cur, threshold=1.5)
        assert len(failures) == 1 and "wall-clock" in failures[0]

    def test_scanned_rows_regression_fails(self):
        base = _record(metrics={"fixpoint_rows_scanned": 1000.0})
        cur = _record(metrics={"fixpoint_rows_scanned": 1600.0})
        failures = compare_records(base, cur, threshold=1.5)
        assert len(failures) == 1 and "rows_scanned" in failures[0]

    def test_deterministic_scan_ratio_gates_at_tight_threshold(self):
        # Scanned-row quotients are deterministic: a 2x drop fails even
        # though timing ratios would tolerate it.
        base = _record(metrics={"range_scan_ratio": 3.0})
        cur = _record(metrics={"range_scan_ratio": 1.5})
        failures = compare_records(base, cur, threshold=1.5)
        assert len(failures) == 1 and "deterministic" in failures[0]

    def test_speedup_collapse_fails(self):
        base = _record(metrics={"headline_speedup": 9.0})
        cur = _record(metrics={"headline_speedup": 2.0})
        failures = compare_records(base, cur, threshold=1.5)
        assert len(failures) == 1 and "fell to" in failures[0]

    def test_speedup_noise_within_ratio_threshold_passes(self):
        # Timing-ratio metrics get the wide RATIO_THRESHOLD margin: a
        # 2x wobble on a few-sample quotient is noise, not regression.
        base = _record(metrics={"headline_speedup": 9.0})
        cur = _record(metrics={"headline_speedup": 4.5})
        assert compare_records(base, cur, threshold=1.5) == []

    def test_schema_mismatch_fails(self):
        base = _record()
        cur = dict(_record(), schema=2)
        failures = compare_records(base, cur, threshold=1.5)
        assert len(failures) == 1 and "schema" in failures[0]

    def test_new_metric_without_baseline_ignored(self):
        base = _record(metrics={})
        cur = _record(metrics={"brand_new_speedup": 2.0})
        assert compare_records(base, cur, threshold=1.5) == []

    def test_disappeared_baseline_metric_fails(self):
        base = _record(metrics={"headline_speedup": 9.0})
        cur = _record(metrics={})
        failures = compare_records(base, cur, threshold=1.5)
        assert len(failures) == 1 and "missing" in failures[0]


class TestRunGate:
    def _write(self, directory, record):
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / f"BENCH_{record['experiment']}.json"
        path.write_text(json.dumps(record))

    def test_green_run(self, tmp_path):
        self._write(tmp_path / "base", _record())
        self._write(tmp_path / "cur", _record())
        failures, notes = run_gate(tmp_path / "base", tmp_path / "cur", 1.5)
        assert failures == [] and any("ok" in n for n in notes)

    def test_injected_slowdown_fails(self, tmp_path):
        self._write(tmp_path / "base", _record())
        self._write(tmp_path / "cur", _record())
        failures, _ = run_gate(
            tmp_path / "base", tmp_path / "cur", 1.5, inject_slowdown=2.0
        )
        assert len(failures) == 1

    def test_missing_current_record_is_note_not_failure(self, tmp_path):
        self._write(tmp_path / "base", _record())
        (tmp_path / "cur").mkdir()
        failures, notes = run_gate(tmp_path / "base", tmp_path / "cur", 1.5)
        assert failures == [] and any("not run" in n for n in notes)

    def test_empty_baselines_pass_with_note(self, tmp_path):
        (tmp_path / "base").mkdir()
        (tmp_path / "cur").mkdir()
        failures, notes = run_gate(tmp_path / "base", tmp_path / "cur", 1.5)
        assert failures == [] and any("nothing gated" in n for n in notes)


class TestCli:
    def test_update_then_gate_roundtrip(self, tmp_path, capsys):
        cur = tmp_path / "cur"
        cur.mkdir()
        (cur / "BENCH_e99.json").write_text(json.dumps(_record()))
        base = tmp_path / "base"
        assert main(["--baselines", str(base), "--current", str(cur), "--update"]) == 0
        assert load_records(base)["e99"]["normalized"] == 10.0
        assert main(["--baselines", str(base), "--current", str(cur)]) == 0
        assert (
            main(
                ["--baselines", str(base), "--current", str(cur),
                 "--inject-slowdown", "2.0"]
            )
            == 1
        )
        out = capsys.readouterr().out
        assert "BENCH GATE FAILED" in out and "bench-override" in out
