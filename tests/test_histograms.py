"""Equi-depth histograms and the statistics-layer regressions of PR 2.

Covers histogram construction on uniform/skewed/constant/unorderable
columns, range-selectivity accuracy (bounded by bucket granularity),
incremental maintenance with staleness-triggered rebuild, the cached
heavy-hitter count (no multiset rescans during plan enumeration), and
the empty-table equality selectivity fix.
"""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from helpers import INFRONTREL
from repro.relational import Database, Histogram, TableStats
from repro.relational.stats import (
    HISTOGRAM_BUCKETS,
    HISTOGRAM_STALENESS_FLOOR,
)


def _accuracy_bound(values) -> float:
    """Worst-case equi-depth estimation error: one bucket's depth plus
    one heavy value (a single value may dominate its bucket)."""
    n = len(values)
    max_count = max(values.count(v) for v in set(values))
    return (math.ceil(n / HISTOGRAM_BUCKETS) + max_count) / n


# ---------------------------------------------------------------------------
# Construction
# ---------------------------------------------------------------------------


class TestHistogramConstruction:
    def test_uniform_column_buckets_balanced(self):
        stats = TableStats.from_rows([(i,) for i in range(1600)], 1)
        hist = stats.columns[0].histogram()
        assert hist is not None
        assert len(hist.bounds) == HISTOGRAM_BUCKETS
        assert hist.total == 1600
        # equi-depth: every bucket carries (close to) the same rows
        assert max(hist.depths) <= 2 * min(hist.depths)

    def test_skewed_column_heavy_value_contained(self):
        rows = [(0,)] * 900 + [(i,) for i in range(1, 101)]
        stats = TableStats.from_rows(rows, 1)
        hist = stats.columns[0].histogram()
        # the heavy value collapses into one bucket; estimates reflect it
        assert stats.range_selectivity(0, "<=", 0) == pytest.approx(0.9)
        assert stats.range_selectivity(0, ">", 0) == pytest.approx(0.1)

    def test_constant_column(self):
        stats = TableStats.from_rows([("x",)] * 50, 1)
        assert stats.range_selectivity(0, "<=", "x") == 1.0
        assert stats.range_selectivity(0, "<", "x") == 0.0
        assert stats.range_selectivity(0, ">", "x") == 0.0
        assert stats.range_selectivity(0, ">=", "x") == 1.0

    def test_unorderable_column_has_no_histogram(self):
        stats = TableStats.from_rows([(1,), ("a",), ((2, 3),)], 1)
        assert stats.columns[0].histogram() is None
        assert stats.range_selectivity(0, "<", 5) is None

    def test_string_column_is_orderable(self):
        stats = TableStats.from_rows([(f"k{i:03d}",) for i in range(100)], 1)
        est = stats.range_selectivity(0, "<=", "k049")
        assert est == pytest.approx(0.5, abs=0.1)

    def test_empty_column(self):
        stats = TableStats(1)
        assert stats.columns[0].histogram() is None
        assert stats.range_selectivity(0, "<", 5) == 0.0

    def test_neq_selectivity_complements_eq(self):
        stats = TableStats.from_rows([(i % 4,) for i in range(100)], 1)
        est = stats.range_selectivity(0, "<>", 2)
        assert est == pytest.approx(1.0 - stats.eq_selectivity(0))


# ---------------------------------------------------------------------------
# Estimation accuracy (property-based)
# ---------------------------------------------------------------------------


@settings(max_examples=60, deadline=None)
@given(
    values=st.lists(st.integers(min_value=0, max_value=500), min_size=20, max_size=400),
    probe=st.integers(min_value=-10, max_value=510),
    op=st.sampled_from(["<", "<=", ">", ">="]),
)
def test_range_estimate_within_bucket_granularity(values, probe, op):
    stats = TableStats.from_rows([(v,) for v in values], 1)
    est = stats.range_selectivity(0, op, probe)
    assert est is not None and 0.0 <= est <= 1.0
    compare = {
        "<": lambda v: v < probe,
        "<=": lambda v: v <= probe,
        ">": lambda v: v > probe,
        ">=": lambda v: v >= probe,
    }[op]
    actual = sum(1 for v in values if compare(v)) / len(values)
    assert abs(est - actual) <= _accuracy_bound(values) + 1e-9


@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    probe=st.integers(min_value=0, max_value=500),
)
def test_range_estimate_tracks_incremental_mutations(seed, probe):
    """Inserts/deletes below the staleness threshold keep estimates sane
    and within the (mutation-widened) accuracy bound."""
    rng = random.Random(seed)
    values = [rng.randrange(500) for _ in range(300)]
    stats = TableStats.from_rows([(v,) for v in values], 1)
    assert stats.range_selectivity(0, "<=", probe) is not None  # build now
    mutations = HISTOGRAM_STALENESS_FLOOR  # stays below the rebuild trigger
    for _ in range(mutations // 2):
        v = rng.randrange(500)
        stats.add_rows([(v,)])
        values.append(v)
    for _ in range(mutations // 2):
        v = values.pop(rng.randrange(len(values)))
        stats.remove_rows([(v,)])
    est = stats.range_selectivity(0, "<=", probe)
    actual = sum(1 for v in values if v <= probe) / len(values)
    assert 0.0 <= est <= 1.0
    assert abs(est - actual) <= _accuracy_bound(values) + mutations / len(values)


class TestIncrementalMaintenance:
    def test_histogram_not_rebuilt_below_threshold(self):
        stats = TableStats.from_rows([(i,) for i in range(1000)], 1)
        column = stats.columns[0]
        assert column.histogram() is not None
        builds = column.histogram_builds
        stats.add_rows([(i,) for i in range(1000, 1000 + HISTOGRAM_STALENESS_FLOOR)])
        assert column.histogram() is not None
        assert column.histogram_builds == builds

    def test_staleness_triggers_rebuild(self):
        stats = TableStats.from_rows([(i,) for i in range(100)], 1)
        column = stats.columns[0]
        assert column.histogram() is not None
        builds = column.histogram_builds
        # churn more than max(floor, 25% of rows): histogram goes stale
        churn = HISTOGRAM_STALENESS_FLOOR + 30
        stats.add_rows([(1000 + i,) for i in range(churn)])
        assert column.histogram() is not None
        assert column.histogram_builds == builds + 1
        # the rebuilt histogram reflects the widened domain (to within
        # one bucket of interpolation error across the domain gap)
        est = stats.range_selectivity(0, ">=", 1000)
        total = 100 + churn
        assert est == pytest.approx(churn / total, abs=1.5 / HISTOGRAM_BUCKETS)

    def test_out_of_range_inserts_widen_edge_buckets(self):
        stats = TableStats.from_rows([(i,) for i in range(64, 128)], 1)
        assert stats.range_selectivity(0, "<=", 200) == 1.0  # builds
        stats.add_rows([(500,)])
        hist = stats.columns[0].histogram()
        assert hist.bounds[-1] == 500
        assert stats.range_selectivity(0, ">", 499) > 0.0

    def test_from_counts_roundtrip(self):
        from collections import Counter

        counts = Counter({5: 10, 1: 3, 9: 7})
        hist = Histogram.from_counts(counts)
        assert hist.total == 20
        assert hist.fraction_below(9, inclusive=True) == 1.0
        assert hist.fraction_below(0, inclusive=True) == 0.0


# ---------------------------------------------------------------------------
# The cached heavy-hitter count (satellite: no O(distinct) rescans)
# ---------------------------------------------------------------------------


class TestHeavyHitterCache:
    def test_probes_do_not_rescan(self):
        """eq_selectivity probes during plan enumeration must not rescan
        the value multiset — the count is maintained incrementally."""
        stats = TableStats.from_rows([(i % 100, i) for i in range(5000)], 2)
        for _ in range(200):
            stats.eq_selectivity(0)
            stats.eq_selectivity(1)
        assert stats.columns[0].mcv_rescans == 0
        assert stats.columns[1].mcv_rescans == 0

    def test_inserts_maintain_max_without_rescan(self):
        stats = TableStats.from_rows([("a",), ("a",), ("b",)], 1)
        assert stats.skew(0) == pytest.approx(2 / 3)
        stats.add_rows([("b",), ("b",)])  # "b" overtakes "a"
        assert stats.skew(0) == pytest.approx(3 / 5)
        assert stats.columns[0].mcv_rescans == 0

    def test_delete_of_heavy_value_rescans_once(self):
        stats = TableStats.from_rows([("a",)] * 5 + [("b",)] * 3, 1)
        stats.remove_rows([("a",)])  # hits the current maximum
        assert stats.skew(0) == pytest.approx(4 / 7)
        assert stats.columns[0].mcv_rescans == 1
        # further probes are cached again
        for _ in range(50):
            stats.eq_selectivity(0)
        assert stats.columns[0].mcv_rescans == 1

    def test_delete_of_light_value_never_rescans(self):
        stats = TableStats.from_rows([("a",)] * 5 + [("b",)] * 3, 1)
        stats.remove_rows([("b",)])
        assert stats.skew(0) == pytest.approx(5 / 7)
        assert stats.columns[0].mcv_rescans == 0


# ---------------------------------------------------------------------------
# Empty-table equality selectivity (satellite regression)
# ---------------------------------------------------------------------------


class TestEmptyTableSelectivity:
    def test_eq_selectivity_zero_for_empty(self):
        stats = TableStats(2)
        assert stats.eq_selectivity(0) == 0.0
        assert stats.key_selectivity((0, 1)) == 0.0
        assert stats.matching_rows((0,)) == 0.0

    def test_empty_relation_priced_as_zero_matches(self):
        db = Database()
        rel = db.declare("Nothing", INFRONTREL, [])
        assert rel.stats().eq_selectivity(0) == 0.0
        assert rel.stats().matching_rows((0,)) == 0.0

    def test_planner_starts_from_empty_relation(self):
        """An empty relation is the cheapest join input: the cost-based
        order puts it first even when it is written last."""
        from repro.calculus import dsl as d
        from repro.compiler import compile_query, run_query

        db = Database()
        db.declare(
            "Big", INFRONTREL, [(f"a{i}", f"b{i % 7}") for i in range(200)]
        )
        db.declare("Hollow", INFRONTREL, [])
        q = d.query(
            d.branch(
                d.each("x", "Big"),
                d.each("y", "Big"),
                d.each("e", "Hollow"),
                pred=d.and_(
                    d.eq(d.a("x", "back"), d.a("y", "front")),
                    d.eq(d.a("e", "front"), d.a("y", "back")),
                ),
                targets=[d.a("x", "front"), d.a("e", "back")],
            )
        )
        plan = compile_query(db, q, optimizer="cost")
        assert plan.branches[0].steps[0].var == "e"
        assert run_query(db, q) == set()
