"""Unit tests for atomic types (section 2.1 of the paper)."""

import pytest

from repro.errors import TypeMismatchError
from repro.types import BOOLEAN, CARDINAL, INTEGER, REAL, STRING
from repro.types.atomic import ATOMIC_TYPES


class TestIntegerDomain:
    def test_contains_int(self):
        assert INTEGER.contains(42)

    def test_contains_negative(self):
        assert INTEGER.contains(-7)

    def test_rejects_bool(self):
        # bool is a Python subclass of int but is not of DBPL type INTEGER.
        assert not INTEGER.contains(True)

    def test_rejects_float(self):
        assert not INTEGER.contains(3.5)

    def test_rejects_string(self):
        assert not INTEGER.contains("3")


class TestCardinalDomain:
    def test_contains_zero(self):
        assert CARDINAL.contains(0)

    def test_rejects_negative(self):
        assert not CARDINAL.contains(-1)

    def test_rejects_bool(self):
        assert not CARDINAL.contains(False)


class TestStringBooleanReal:
    def test_string_accepts_str(self):
        assert STRING.contains("table")

    def test_string_rejects_int(self):
        assert not STRING.contains(7)

    def test_boolean_accepts_bool(self):
        assert BOOLEAN.contains(True)
        assert BOOLEAN.contains(False)

    def test_boolean_rejects_int(self):
        assert not BOOLEAN.contains(1)

    def test_real_accepts_float_and_int(self):
        assert REAL.contains(2.5)
        assert REAL.contains(2)

    def test_real_rejects_bool(self):
        assert not REAL.contains(True)


class TestCheck:
    def test_check_returns_value(self):
        assert INTEGER.check(5) == 5

    def test_check_raises_with_context(self):
        with pytest.raises(TypeMismatchError, match="partid"):
            INTEGER.check("x", context="partid")


class TestFamilies:
    def test_numeric_family_shared(self):
        assert INTEGER.family() == CARDINAL.family() == REAL.family() == "numeric"

    def test_string_family_distinct(self):
        assert STRING.family() != INTEGER.family()

    def test_registry_contains_all_builtins(self):
        assert set(ATOMIC_TYPES) == {
            "INTEGER", "CARDINAL", "STRING", "BOOLEAN", "REAL", "ANY",
        }

    def test_any_accepts_scalars_only(self):
        from repro.types import ANY

        assert ANY.contains("x") and ANY.contains(3) and ANY.contains(True)
        assert not ANY.contains(("a", "b"))
