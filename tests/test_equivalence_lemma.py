"""Section 3.4 lemma: constructors ≡ function-free PROLOG (both directions).

Cross-checks FOUR independently implemented evaluators on the same
programs: constructor fixpoint engines, the bottom-up Datalog engine,
SLD resolution, and the tabled engine.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import paper
from repro.constructors import apply_constructor, construct, instantiate, solve_system
from repro.calculus import dsl as d
from repro.datalog import (
    DatalogEngine,
    datalog_to_database,
    parse_atom,
    parse_program,
    system_to_program,
)
from repro.errors import TranslationError
from repro.prolog import KnowledgeBase, SLDEngine, TabledEngine

from helpers import SCENE_INFRONT, SCENE_ONTOP

TC_SOURCE = """
ahead(X, Y) :- infront(X, Y).
ahead(X, Y) :- infront(X, Z), ahead(Z, Y).
"""


class TestDatalogToConstructors:
    def test_tc_program(self):
        db, apps = datalog_to_database(
            parse_program(TC_SOURCE), {"infront": set(SCENE_INFRONT)}
        )
        result = construct(db, apps["ahead"])
        oracle = DatalogEngine(
            parse_program(TC_SOURCE), {"infront": set(SCENE_INFRONT)}
        ).solve()["ahead"]
        assert result.rows == oracle

    def test_same_generation(self):
        src = """
        sg(X, Y) :- flat(X, Y).
        sg(X, Y) :- up(X, U), sg(U, V), down(V, Y).
        """
        edb = {
            "flat": {("a", "b"), ("c", "c")},
            "up": {("x", "a"), ("y", "b"), ("z", "c")},
            "down": {("a", "p"), ("b", "q"), ("c", "z")},
        }
        db, apps = datalog_to_database(parse_program(src), edb)
        result = construct(db, apps["sg"])
        oracle = DatalogEngine(parse_program(src), edb).solve()["sg"]
        assert result.rows == oracle

    def test_mutual_recursion(self):
        src = """
        even(X) :- zero(X).
        even(X) :- succ(Y, X), odd(Y).
        odd(X) :- succ(Y, X), even(Y).
        """
        edb = {"zero": {(0,)}, "succ": {(i, i + 1) for i in range(8)}}
        db, apps = datalog_to_database(parse_program(src), edb)
        even = construct(db, apps["even"])
        odd = construct(db, apps["odd"])
        assert even.rows == {(0,), (2,), (4,), (6,), (8,)}
        assert odd.rows == {(1,), (3,), (5,), (7,)}

    def test_constants_and_comparisons(self):
        src = """
        tall(X) :- height(X, H), H >= 10.
        reach(Y) :- edge(a, Y).
        reach(Y) :- reach(X), edge(X, Y).
        """
        edb = {
            "height": {("t1", 12), ("t2", 3)},
            "edge": {("a", "b"), ("b", "c"), ("z", "w")},
        }
        db, apps = datalog_to_database(parse_program(src), edb)
        assert construct(db, apps["tall"]).rows == {("t1",)}
        assert construct(db, apps["reach"]).rows == {("b",), ("c",)}

    def test_idb_facts_seed_base(self):
        src = "p(X, Y) :- q(X, Y).\np(seed, seed)."
        db, apps = datalog_to_database(parse_program(src), {"q": {("a", "b")}})
        assert construct(db, apps["p"]).rows == {("a", "b"), ("seed", "seed")}

    def test_inconsistent_arity_rejected(self):
        with pytest.raises(TranslationError, match="arities"):
            datalog_to_database(parse_program("p(a).\np(a, b)."))


class TestConstructorsToDatalog:
    def _tc_system(self, infront):
        db = paper.cad_database(infront=infront, mutual=False)
        system = instantiate(db, d.constructed("Infront", "ahead"))
        return db, system

    def test_tc_roundtrip(self):
        db, system = self._tc_system(SCENE_INFRONT)
        program, edb, root = system_to_program(db, system)
        oracle = DatalogEngine(program, edb).solve()[root]
        direct = solve_system(db, system)
        assert direct.rows == oracle

    def test_translated_program_is_safe(self):
        db, system = self._tc_system(SCENE_INFRONT)
        program, _edb, _root = system_to_program(db, system)
        assert all(rule.is_range_restricted() for rule in program.rules)

    def test_mutual_system_translates(self):
        db = paper.cad_database(
            infront=SCENE_INFRONT, ontop=SCENE_ONTOP, mutual=True
        )
        system = instantiate(db, d.constructed("Infront", "ahead", d.rel("Ontop")))
        program, edb, root = system_to_program(db, system)
        oracle = DatalogEngine(program, edb).solve()[root]
        assert solve_system(db, system).rows == oracle

    def test_nonpositive_body_rejected(self):
        db = paper.cad_database(infront=SCENE_INFRONT, mutual=False)
        from repro.relational import Database

        db2 = Database()
        db2.declare("Base", paper.CARDREL, [(i,) for i in range(4)])
        paper.define_strange(db2)
        system = instantiate(db2, d.constructed("Base", "strange"))
        with pytest.raises(TranslationError):
            system_to_program(db2, system)

    def test_or_branches_split_into_rules(self):
        from repro.constructors import define_constructor

        from repro.relational import Database

        db = Database()
        db.declare("E", paper.INFRONTREL, [("a", "b"), ("b", "c")])
        body = d.query(
            d.branch(
                d.each("r", "Rel"),
                pred=d.or_(d.eq(d.a("r", "front"), "a"), d.eq(d.a("r", "back"), "c")),
                targets=[d.a("r", "front"), d.a("r", "back")],
            )
        )
        define_constructor(db, "pick", "Rel", paper.INFRONTREL, paper.AHEADREL, body)
        system = instantiate(db, d.constructed("E", "pick"))
        program, edb, root = system_to_program(db, system)
        assert len(program.rules) == 2
        oracle = DatalogEngine(program, edb).solve()[root]
        assert oracle == solve_system(db, system).rows


class TestFourWayAgreement:
    """Constructor engines, Datalog engine, SLD, and tabling all agree."""

    nodes = st.sampled_from(["a", "b", "c", "d", "e"])
    # acyclic edge sets so plain SLD terminates
    edge_sets = st.sets(
        st.tuples(nodes, nodes).filter(lambda e: e[0] < e[1]), max_size=10
    )

    @settings(max_examples=25, deadline=None)
    @given(edge_sets)
    def test_transitive_closure_agreement(self, edges):
        # 1. constructor engine
        db = paper.cad_database(infront=edges, mutual=False)
        constructed = apply_constructor(db, "Infront", "ahead").rows
        # 2. bottom-up Datalog
        program = parse_program(TC_SOURCE)
        datalog = DatalogEngine(program, {"infront": edges}).solve().get(
            "ahead", frozenset()
        )
        # 3. SLD resolution
        kb = KnowledgeBase.from_program(program, {"infront": edges})
        sld = SLDEngine(kb).all_answers(parse_atom("ahead(X, Y)"))
        # 4. tabled top-down
        tabled = TabledEngine(kb).all_answers(parse_atom("ahead(X, Y)"))
        assert constructed == datalog == sld == tabled

    @settings(max_examples=15, deadline=None)
    @given(edge_sets)
    def test_point_query_agreement(self, edges):
        program = parse_program(TC_SOURCE)
        kb = KnowledgeBase.from_program(program, {"infront": edges})
        goal = parse_atom("ahead(a, Y)")
        sld = SLDEngine(kb).all_answers(goal)
        tabled = TabledEngine(kb).all_answers(goal)
        datalog = DatalogEngine(program, {"infront": edges}).query(goal)
        assert sld == tabled == datalog
