"""Tests for the Datalog AST, parser, and bottom-up engine."""

import pytest

from repro.datalog import (
    Atom,
    Comparison,
    Const,
    DatalogEngine,
    DatalogStats,
    Program,
    Rule,
    Var,
    mkatom,
    parse_atom,
    parse_program,
)
from repro.errors import DBPLSyntaxError, TranslationError

TC_SOURCE = """
% transitive closure of infront
ahead(X, Y) :- infront(X, Y).
ahead(X, Y) :- infront(X, Z), ahead(Z, Y).
"""

CHAIN = {("a", "b"), ("b", "c"), ("c", "d")}
CHAIN_TC = {("a", "b"), ("b", "c"), ("c", "d"), ("a", "c"), ("b", "d"), ("a", "d")}


class TestParser:
    def test_parse_rule_structure(self):
        program = parse_program(TC_SOURCE)
        assert len(program.rules) == 2
        head = program.rules[0].head
        assert head.pred == "ahead"
        assert head.terms == (Var("X"), Var("Y"))

    def test_parse_fact(self):
        program = parse_program("infront(table, chair).")
        (rule,) = program.rules
        assert rule.is_fact
        assert rule.head.terms == (Const("table"), Const("chair"))

    def test_parse_numbers_and_strings(self):
        program = parse_program('size(box, 3).  name(box, "The Box").')
        assert program.rules[0].head.terms[1] == Const(3)
        assert program.rules[1].head.terms[1] == Const("The Box")

    def test_parse_comparison(self):
        program = parse_program("big(X) :- size(X, S), S > 10.")
        (rule,) = program.rules
        assert isinstance(rule.body[1], Comparison)
        assert rule.body[1].op == ">"

    def test_comments_ignored(self):
        program = parse_program("% nothing here\np(a). % trailing\n")
        assert len(program.rules) == 1

    def test_parse_atom_helper(self):
        atom = parse_atom("ahead(table, X)")
        assert atom == Atom("ahead", (Const("table"), Var("X")))

    def test_missing_dot_raises(self):
        with pytest.raises(DBPLSyntaxError):
            parse_program("p(a)")

    def test_uppercase_predicate_rejected(self):
        with pytest.raises(DBPLSyntaxError):
            parse_program("Pred(a).")

    def test_unexpected_character(self):
        with pytest.raises(DBPLSyntaxError):
            parse_program("p(a) & q(b).")

    def test_roundtrip_str(self):
        program = parse_program(TC_SOURCE)
        again = parse_program(str(program))
        assert again == program


class TestProgramStructure:
    def test_idb_edb_partition(self):
        program = parse_program(TC_SOURCE)
        assert program.idb_predicates() == {"ahead"}
        assert program.edb_predicates() == {"infront"}

    def test_range_restriction(self):
        safe = parse_program("p(X) :- e(X, Y).").rules[0]
        unsafe = Rule(mkatom("p", "X", "Y"), (mkatom("e", "X", "X"),))
        assert safe.is_range_restricted()
        assert not unsafe.is_range_restricted()

    def test_unsafe_program_rejected_by_engine(self):
        program = Program((Rule(mkatom("p", "X"), (Comparison("<", Var("X"), Const(3)),)),))
        with pytest.raises(TranslationError):
            DatalogEngine(program)


class TestEngineTC:
    def test_naive_chain(self):
        engine = DatalogEngine(parse_program(TC_SOURCE), {"infront": CHAIN})
        assert engine.solve("naive")["ahead"] == CHAIN_TC

    def test_seminaive_chain(self):
        engine = DatalogEngine(parse_program(TC_SOURCE), {"infront": CHAIN})
        assert engine.solve("seminaive")["ahead"] == CHAIN_TC

    def test_cycle_terminates(self):
        edges = {("a", "b"), ("b", "a")}
        engine = DatalogEngine(parse_program(TC_SOURCE), {"infront": edges})
        result = engine.solve()["ahead"]
        assert result == {("a", "b"), ("b", "a"), ("a", "a"), ("b", "b")}

    def test_inline_facts(self):
        src = TC_SOURCE + "infront(a, b). infront(b, c)."
        engine = DatalogEngine(parse_program(src))
        assert engine.solve()["ahead"] == {("a", "b"), ("b", "c"), ("a", "c")}

    def test_query_with_constants(self):
        engine = DatalogEngine(parse_program(TC_SOURCE), {"infront": CHAIN})
        assert engine.query(parse_atom("ahead(a, X)")) == {
            ("a", "b"), ("a", "c"), ("a", "d"),
        }

    def test_query_repeated_variable(self):
        edges = {("a", "b"), ("b", "a")}
        engine = DatalogEngine(parse_program(TC_SOURCE), {"infront": edges})
        assert engine.query(parse_atom("ahead(X, X)")) == {("a", "a"), ("b", "b")}

    def test_stats_track_work(self):
        stats = DatalogStats()
        engine = DatalogEngine(parse_program(TC_SOURCE), {"infront": CHAIN})
        engine.solve("seminaive", stats)
        assert stats.iterations >= 3
        assert stats.tuples_derived == len(CHAIN_TC)

    def test_seminaive_fewer_substitutions_than_naive(self):
        long_chain = {(f"n{i}", f"n{i+1}") for i in range(30)}
        s_naive, s_semi = DatalogStats(), DatalogStats()
        DatalogEngine(parse_program(TC_SOURCE), {"infront": long_chain}).solve("naive", s_naive)
        DatalogEngine(parse_program(TC_SOURCE), {"infront": long_chain}).solve("seminaive", s_semi)
        assert s_semi.substitutions < s_naive.substitutions


class TestEngineBeyondTC:
    def test_same_generation(self):
        src = """
        sg(X, Y) :- flat(X, Y).
        sg(X, Y) :- up(X, U), sg(U, V), down(V, Y).
        """
        edb = {
            "flat": {("a", "b")},
            "up": {("x", "a"), ("y", "b")},
            "down": {("a", "x2"), ("b", "y2")},
        }
        engine = DatalogEngine(parse_program(src), edb)
        result = engine.solve()["sg"]
        assert ("a", "b") in result
        assert ("x", "y2") in result

    def test_mutual_recursion(self):
        src = """
        even(X) :- zero(X).
        even(X) :- succ(Y, X), odd(Y).
        odd(X) :- succ(Y, X), even(Y).
        """
        edb = {
            "zero": {(0,)},
            "succ": {(i, i + 1) for i in range(6)},
        }
        engine = DatalogEngine(parse_program(src), edb)
        solution = engine.solve()
        assert solution["even"] == {(0,), (2,), (4,), (6,)}
        assert solution["odd"] == {(1,), (3,), (5,)}

    def test_comparison_literal(self):
        src = "adult(X) :- age(X, A), A >= 18."
        edb = {"age": {("kim", 20), ("lee", 12)}}
        engine = DatalogEngine(parse_program(src), edb)
        assert engine.solve()["adult"] == {("kim",)}

    def test_unbound_comparison_raises(self):
        src = "p(X) :- e(X, Y), Z > 3."
        # Z never bound: safety passes (head bound) but comparison fails.
        engine = DatalogEngine(parse_program(src), {"e": {("a", "b")}})
        with pytest.raises(TranslationError, match="unbound"):
            engine.solve()

    def test_constants_in_rule_body(self):
        src = "reach(Y) :- edge(start, Y).\nreach(Y) :- reach(X), edge(X, Y)."
        edb = {"edge": {("start", "m"), ("m", "n"), ("other", "z")}}
        engine = DatalogEngine(parse_program(src), edb)
        assert engine.solve()["reach"] == {("m",), ("n",)}


class TestEngineCompiled:
    """mode="compiled": Datalog routed through the constructor
    translation and the batched planner executor (section 3.4 both ways:
    same least models, different machinery)."""

    def _agree(self, src, edb=None, preds=None):
        reference = DatalogEngine(parse_program(src), edb).solve("seminaive")
        compiled = DatalogEngine(parse_program(src), edb).solve("compiled")
        for pred in preds or reference:
            assert compiled.get(pred) == reference.get(pred), pred

    def test_chain_tc(self):
        engine = DatalogEngine(parse_program(TC_SOURCE), {"infront": CHAIN})
        assert engine.solve("compiled")["ahead"] == CHAIN_TC

    def test_cycle_terminates(self):
        self._agree(TC_SOURCE, {"infront": {("a", "b"), ("b", "a")}})

    def test_inline_facts_and_constants(self):
        self._agree(
            "reach(Y) :- edge(start, Y).\nreach(Y) :- reach(X), edge(X, Y).",
            {"edge": {("start", "m"), ("m", "n"), ("other", "z")}},
        )

    def test_mutual_recursion(self):
        src = """
        even(X) :- zero(X).
        even(X) :- succ(Y, X), odd(Y).
        odd(X) :- succ(Y, X), even(Y).
        """
        edb = {"zero": {(0,)}, "succ": {(i, i + 1) for i in range(6)}}
        self._agree(src, edb, preds=("even", "odd"))

    def test_nonlinear_same_generation(self):
        src = """
        sg(X, Y) :- sibling(X, Y).
        sg(X, Y) :- parent(X, XP), sg(XP, YP), parent(Y, YP).
        """
        edb = {
            "parent": {("a", "p"), ("b", "p"), ("c", "q"), ("d", "q"),
                       ("p", "g"), ("q", "g")},
            "sibling": {("a", "b"), ("b", "a"), ("c", "d"), ("d", "c")},
        }
        self._agree(src, edb, preds=("sg",))

    def test_comparison_literals(self):
        self._agree(
            "adult(X) :- age(X, A), A >= 18.",
            {"age": {("kim", 20), ("lee", 12)}},
        )

    def test_query_through_compiled_mode(self):
        engine = DatalogEngine(parse_program(TC_SOURCE), {"infront": CHAIN})
        assert engine.query(parse_atom("ahead(a, X)"), mode="compiled") == {
            ("a", "b"), ("a", "c"), ("a", "d"),
        }

    def test_stats_report_compiled_mode(self):
        stats = DatalogStats()
        engine = DatalogEngine(parse_program(TC_SOURCE), {"infront": CHAIN})
        engine.solve("compiled", stats)
        assert stats.mode == "compiled"
        assert stats.iterations >= 3
        assert stats.tuples_derived >= len(CHAIN_TC)
