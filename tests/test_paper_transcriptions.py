"""Tests for repro.paper: the executable transcription of the paper."""


from repro import paper
from repro.calculus import dsl as d
from repro.relational import Database


class TestSchemas:
    def test_cad_schema_declares_three_relations(self):
        db = Database()
        paper.cad_schema(db)
        assert {"Objects", "Infront", "Ontop"} <= set(db.relations)

    def test_objects_key_is_part(self):
        assert paper.OBJECTREL.key == ("part",)

    def test_derived_relations_are_keyless(self):
        assert paper.AHEADREL.key == ()
        assert paper.ABOVEREL.key == ()

    def test_record_attribute_names_match_paper(self):
        assert paper.INFRONTREC.attribute_names == ("front", "back")
        assert paper.ONTOPREC.attribute_names == ("top", "base")
        assert paper.AHEADREC.attribute_names == ("head", "tail")
        assert paper.ABOVEREC.attribute_names == ("high", "low")


class TestReadyMadeDatabase:
    def test_mutual_database_has_both_constructors(self):
        db = paper.cad_database(mutual=True)
        assert {"ahead", "above", "ahead2"} <= set(db.constructors)
        assert {"refint", "hidden_by"} <= set(db.selectors)

    def test_simple_database_has_parameterless_ahead(self):
        db = paper.cad_database(mutual=False)
        assert db.constructor("ahead").params == ()

    def test_definitions_are_positive(self):
        from repro.constructors import is_definition_positive

        db = paper.cad_database(mutual=True)
        for name in ("ahead", "above", "ahead2"):
            assert is_definition_positive(db.constructor(name)), name


class TestAheadNFamily:
    """ahead_n as bounded constructor application (section 3.1)."""

    def test_ahead_n_equals_paths_up_to_n(self):
        from repro.constructors import construct_bounded

        edges = [(f"x{i}", f"x{i+1}") for i in range(6)]
        db = paper.cad_database(infront=edges, mutual=False)
        node = d.constructed("Infront", "ahead")
        for n in range(1, 7):
            rows = construct_bounded(db, node, n).rows
            expected = {
                (f"x{i}", f"x{j}")
                for i in range(7)
                for j in range(i + 1, min(i + n, 6) + 1)
            }
            assert rows == expected, f"ahead_{n}"


class TestHiddenByComposition:
    def test_formal_semantics_of_paper_expression(self):
        """Infront[hidden_by("table")]{ahead}: the constructor closes over
        the selected base only (see DESIGN.md faithfulness notes)."""
        db = paper.cad_database(
            infront=[("table", "chair"), ("chair", "door")], mutual=False
        )
        from repro.constructors import construct

        node = d.constructed(
            d.selected("Infront", "hidden_by", d.const("table")), "ahead"
        )
        assert construct(db, node).rows == {("table", "chair")}

    def test_intuitive_reading_via_bound_query(self):
        """The 'all objects behind the table' reading = head-bound query
        over the unrestricted closure (the E13 specialization)."""
        from repro.compiler import bound_query, detect_linear_tc
        from repro.constructors import instantiate

        db = paper.cad_database(
            infront=[("table", "chair"), ("chair", "door")], mutual=False
        )
        system = instantiate(db, d.constructed("Infront", "ahead"))
        shape = detect_linear_tc(db, system)
        assert bound_query(db, shape, "head", "table") == {
            ("table", "chair"), ("table", "door"),
        }
