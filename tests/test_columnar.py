"""Columnar (struct-of-arrays) carries: fusion shapes, batched residuals.

The PR 4 safety net on top of the 50-seed equivalence suite in
``test_batched_executor.py``: plan-shape assertions that Project fuses
into the producing operator exactly when no residual follows, the
cost-gated probe-pushdown of selective filters, the per-batch
memoization of residual checks (regression test: evaluator invocations
are bounded by *distinct* bindings, not rows), and the grouped
index-probe fast paths for ``Some``/``InRel`` residuals.
"""

import random

import pytest

from repro import paper
from repro.bench.experiments import e15_drift_edges
from repro.calculus import Evaluator, dsl as d
from repro.compiler import (
    BatchedResidualFilter,
    ExecutionContext,
    Filter,
    PlanStats,
    Project,
    compile_fixpoint,
    compile_query,
)
from repro.constructors import instantiate
from repro.datalog import DatalogEngine, parse_program
from repro.relational import Database
from repro.types import INTEGER, STRING, record, relation_type


def _wide_db(rows=250, keys=25, seed=9):
    rng = random.Random(seed)
    wide = record("w", a0=STRING, a1=INTEGER, a2=INTEGER, a7=STRING)
    db = Database("columnar")

    def rel(n, prefix):
        return {
            (
                f"{prefix}k{rng.randrange(keys)}",
                i,
                rng.randrange(1000),
                f"{chr(ord(prefix) + 1)}k{rng.randrange(keys)}",
            )
            for i in range(n)
        }

    db.declare("R1", relation_type("r1", wide), rel(rows, "a"))
    db.declare("R2", relation_type("r2", wide), rel(rows, "b"))
    return db


def _join_query(pred_extra=None, targets=None):
    pred = d.eq(d.a("x", "a7"), d.a("y", "a0"))
    if pred_extra is not None:
        pred = d.and_(pred, pred_extra)
    return d.query(
        d.branch(
            d.each("x", "R1"),
            d.each("y", "R2"),
            pred=pred,
            targets=targets or [d.a("x", "a1"), d.a("y", "a1")],
        )
    )


def _ops(plan, branch=0):
    return list(plan.branches[branch].ensure_pipeline().operators())


class TestProjectFusion:
    def test_project_fused_when_no_residual(self):
        db = _wide_db()
        plan = compile_query(db, _join_query())
        ops = _ops(plan)
        assert not any(isinstance(op, Project) for op in ops)
        assert plan.branches[0].pipeline.fused
        rows = plan.execute(ExecutionContext(db))
        assert rows == Evaluator(db).eval_query(_join_query())

    def test_project_standalone_when_residual_follows(self):
        db = _wide_db()
        # The quantifier reads both binding variables, so it can only run
        # after the final join — which blocks projection fusion.
        q = _join_query(
            pred_extra=d.some(
                "s",
                "R1",
                d.and_(
                    d.eq(d.a("s", "a0"), d.a("y", "a7")),
                    d.eq(d.a("s", "a1"), d.a("x", "a1")),
                ),
            )
        )
        plan = compile_query(db, q)
        ops = _ops(plan)
        assert any(isinstance(op, BatchedResidualFilter) for op in ops)
        assert isinstance(ops[-1], Project)
        assert not plan.branches[0].pipeline.fused
        rows = plan.execute(ExecutionContext(db))
        assert rows == Evaluator(db).eval_query(q)

    def test_fused_filter_into_final_operator(self):
        """An unselective final-step filter folds into the fused emit:
        no standalone Filter, no Project, answers unchanged."""
        db = _wide_db()
        q = _join_query(pred_extra=d.gt(d.a("y", "a2"), 100))
        plan = compile_query(db, q, optimizer="syntactic")
        ops = _ops(plan)
        assert not any(isinstance(op, (Filter, Project)) for op in ops)
        rows = plan.execute(ExecutionContext(db), executor="batch")
        assert rows == plan.execute(ExecutionContext(db), executor="tuple")
        assert rows == Evaluator(db).eval_query(q)

    def test_fused_operator_actuals_match_emitted(self):
        db = _wide_db()
        plan = compile_query(db, _join_query())
        stats = PlanStats()
        rows = plan.execute(ExecutionContext(db, stats=stats))
        ops = _ops(plan)
        assert ops[-1].actual_rows >= len(rows)  # duplicates pre-dedup
        assert stats.tuples_emitted == ops[-1].actual_rows
        text = plan.explain()
        assert "est=" in text and "act=" in text and "DEDUP" in text

    def test_whole_row_target_fused(self):
        db = _wide_db()
        q = d.query(
            d.branch(d.each("x", "R1"), pred=d.gt(d.a("x", "a2"), 500))
        )
        plan = compile_query(db, q)
        assert not any(isinstance(op, Project) for op in _ops(plan))
        rows = plan.execute(ExecutionContext(db))
        assert rows == Evaluator(db).eval_query(q)


class TestFilterPushdownGate:
    def test_selective_filter_pushes_into_probe(self):
        db = _wide_db(rows=500, keys=20)
        q = _join_query(pred_extra=d.gt(d.a("y", "a2"), 950))
        plan = compile_query(db, q, optimizer="syntactic")
        text = plan.explain()
        assert "pushfilter" in text
        rows = plan.execute(ExecutionContext(db), executor="batch")
        assert rows == plan.execute(ExecutionContext(db), executor="rowbatch")
        assert rows == Evaluator(db).eval_query(q)

    def test_unselective_filter_stays_standalone(self):
        db = _wide_db(rows=200, keys=12)
        # y is joined mid-pipeline under the syntactic order; the filter
        # keeps ~80% of rows, so the gate refuses the pushdown.
        q = d.query(
            d.branch(
                d.each("x", "R1"),
                d.each("y", "R2"),
                pred=d.and_(
                    d.eq(d.a("x", "a7"), d.a("y", "a0")),
                    d.and_(
                        d.gt(d.a("y", "a2"), 200),
                        d.some("s", "R1", d.eq(d.a("s", "a0"), d.a("y", "a7"))),
                    ),
                ),
                targets=[d.a("x", "a1"), d.a("y", "a1")],
            )
        )
        plan = compile_query(db, q, optimizer="syntactic")
        text = plan.explain()
        assert "pushfilter" not in text
        ops = _ops(plan)
        assert any(isinstance(op, Filter) for op in ops)
        rows = plan.execute(ExecutionContext(db))
        assert rows == Evaluator(db).eval_query(q)


class TestPushFilterMemoIsolation:
    def test_memo_not_inherited_across_garbage_collected_operators(self):
        """Regression: the pushed-bucket memo is keyed by the operator
        *object*; a new HashJoin allocated into a freed operator's slot
        (recycled id) must never inherit the dead operator's filtered
        buckets on a reused context."""
        import gc

        db = _wide_db(rows=500, keys=20)
        ctx = ExecutionContext(db)

        def run(cut):
            q = _join_query(pred_extra=d.gt(d.a("y", "a2"), cut))
            plan = compile_query(db, q, optimizer="syntactic")
            assert "pushfilter" in plan.explain()
            rows = plan.execute(ctx, executor="batch")
            expected = plan.execute(ExecutionContext(db), executor="tuple")
            assert rows == expected, f"cut={cut}"
            return rows

        first = run(990)
        gc.collect()
        second = run(900)
        assert len(second) > len(first)


class TestBatchedResiduals:
    def test_memoization_regression(self):
        """Residual checks are memoized per batch: the evaluator runs
        once per distinct binding, not once per joined row.

        The syntactic order pins ``y`` onto the hash join, so its rows
        reach the residual repeated once per matching ``x`` row; an
        All-quantifier keeps the evaluator fallback in play.
        """
        db = _wide_db(rows=200, keys=8)  # heavy key duplication
        q = _join_query(
            pred_extra=d.all_(
                "s",
                "R2",
                d.or_(
                    d.ne(d.a("s", "a0"), d.a("y", "a7")),
                    d.ge(d.a("s", "a1"), 0),
                ),
            )
        )
        plan = compile_query(db, q, optimizer="syntactic")
        stats = PlanStats()
        rows = plan.execute(ExecutionContext(db, stats=stats), executor="batch")
        assert rows == Evaluator(db).eval_query(q)
        distinct_y = len(db["R2"])
        assert 0 < stats.residual_evals <= distinct_y
        assert stats.residual_checks > stats.residual_evals

    def test_some_residual_uses_grouped_probe(self):
        db = _wide_db()
        q = _join_query(
            pred_extra=d.some("s", "R1", d.eq(d.a("s", "a0"), d.a("y", "a7")))
        )
        plan = compile_query(db, q)
        residuals = [
            op for op in _ops(plan) if isinstance(op, BatchedResidualFilter)
        ]
        assert len(residuals) == 1 and residuals[0].probe is not None
        stats = PlanStats()
        rows = plan.execute(ExecutionContext(db, stats=stats))
        assert stats.residual_evals == 0  # no evaluator calls at all
        assert rows == Evaluator(db).eval_query(q)

    def test_inrel_and_negation_fast_path(self):
        db = _wide_db()
        q = _join_query(
            pred_extra=d.not_(
                d.in_(
                    d.tup(d.a("y", "a7"), d.a("y", "a1"), d.a("y", "a2"), d.a("y", "a0")),
                    "R2",
                )
            )
        )
        plan = compile_query(db, q)
        residuals = [
            op for op in _ops(plan) if isinstance(op, BatchedResidualFilter)
        ]
        assert residuals and residuals[0].probe is not None
        stats = PlanStats()
        rows = plan.execute(ExecutionContext(db, stats=stats))
        assert stats.residual_evals == 0
        assert rows == Evaluator(db).eval_query(q)
        assert rows == plan.execute(ExecutionContext(db), executor="tuple")

    def test_all_quantifier_uses_complement_probe(self):
        """ALL s (s.a <> outer.b) runs as one grouped anti-join probe:
        the complement existential is hashed once and each distinct
        binding costs a bucket-existence check — zero evaluator calls."""
        db = _wide_db()
        # s ranges over R2, whose a0 values share the "bk" domain with
        # y.a0 — the probe genuinely decides, and (since y itself is in
        # R2) the universal can never hold: the complement must filter
        # everything, exactly as the reference evaluator says.
        q = _join_query(
            pred_extra=d.all_("s", "R2", d.ne(d.a("s", "a0"), d.a("y", "a0")))
        )
        plan = compile_query(db, q)
        residuals = [
            op for op in _ops(plan) if isinstance(op, BatchedResidualFilter)
        ]
        assert len(residuals) == 1 and residuals[0].probe is not None
        assert residuals[0].probe.negate  # complement: flipped verdict
        stats = PlanStats()
        rows = plan.execute(ExecutionContext(db, stats=stats))
        assert stats.residual_evals == 0
        assert rows == Evaluator(db).eval_query(q) == set()

    def test_all_quantifier_probe_disjunction_and_negation(self):
        """OR-of-inequality bodies and negated-equality disjuncts compile
        to a multi-attribute complement probe; NOT ALL flips back to a
        plain semi-join verdict.  Answers match the evaluator with zero
        evaluator calls on the residual."""
        db = _wide_db()
        body = d.or_(
            d.not_(d.eq(d.a("s", "a0"), d.a("y", "a7"))),
            d.ne(d.a("s", "a1"), d.a("x", "a1")),
        )
        for wrap in (lambda p: p, d.not_):
            q = _join_query(pred_extra=wrap(d.all_("s", "R2", body)))
            plan = compile_query(db, q)
            residuals = [
                op for op in _ops(plan) if isinstance(op, BatchedResidualFilter)
            ]
            assert residuals and residuals[0].probe is not None
            assert residuals[0].probe.attrs == ("a0", "a1")
            stats = PlanStats()
            rows = plan.execute(ExecutionContext(db, stats=stats))
            assert stats.residual_evals == 0
            assert rows == Evaluator(db).eval_query(q)

    def test_all_quantifier_range_body_keeps_evaluator_fallback(self):
        """A universal whose body is not a disjunction of inequalities
        (here: a range comparison) cannot complement into equalities —
        the memoized evaluator fallback stays in charge."""
        db = _wide_db(rows=120, keys=10)
        q = _join_query(
            pred_extra=d.all_("s", "R2", d.or_(
                d.ne(d.a("s", "a0"), d.a("y", "a7")),
                d.ge(d.a("s", "a1"), 0),
            ))
        )
        plan = compile_query(db, q)
        residuals = [
            op for op in _ops(plan) if isinstance(op, BatchedResidualFilter)
        ]
        assert residuals and residuals[0].probe is None
        stats = PlanStats()
        rows = plan.execute(ExecutionContext(db, stats=stats))
        assert rows == Evaluator(db).eval_query(q)
        assert stats.residual_evals > 0  # the fallback really ran

    def test_multi_variable_residual_falls_back_memoized(self):
        db = _wide_db(rows=120, keys=15)
        q = _join_query(
            pred_extra=d.some(
                "s",
                "R2",
                d.and_(
                    d.eq(d.a("s", "a0"), d.a("y", "a7")),
                    d.gt(d.a("s", "a1"), d.a("x", "a1")),
                ),
            )
        )
        plan = compile_query(db, q)
        residuals = [
            op for op in _ops(plan) if isinstance(op, BatchedResidualFilter)
        ]
        assert residuals and residuals[0].probe is None  # two outer vars + inequality
        stats = PlanStats()
        rows = plan.execute(ExecutionContext(db, stats=stats))
        assert rows == Evaluator(db).eval_query(q)
        assert stats.residual_evals <= stats.residual_checks

    def test_probe_sees_relation_mutation_on_reused_context(self):
        """Regression: the grouped Some-probe must go through the
        relation's version-aware index cache, so re-executing on a
        *reused* ExecutionContext after an in-place insert sees the new
        rows (it used to serve the pre-mutation index)."""
        db = _wide_db(rows=60, keys=6)
        q = _join_query(
            pred_extra=d.some("s", "R1", d.eq(d.a("s", "a0"), d.a("y", "a7")))
        )
        plan = compile_query(db, q)
        ctx = ExecutionContext(db)
        before = plan.execute(ctx, executor="batch")
        assert before == Evaluator(db).eval_query(q)
        db["R1"].insert([("ak999", 10_000, 5, "bk999")])
        db["R2"].insert([("bk123", 10_001, 6, "ak999")])
        after = plan.execute(ctx, executor="batch")
        assert after == Evaluator(db).eval_query(q)
        assert after == plan.execute(ExecutionContext(db), executor="tuple")

    def test_quantifier_over_delta_in_fixpoint(self):
        """Residual probes over fixpoint variables resolve per iteration
        (fresh execution context), so grouped probes never see stale
        delta values across iterations or re-plans."""
        edges = e15_drift_edges(comps=3, sources=10, leaves=10)
        db = paper.cad_database(infront=edges, mutual=False)
        system = instantiate(db, d.constructed("Infront", "ahead"))
        columnar = compile_fixpoint(db, system, executor="batch")
        values = columnar.run()
        db2 = paper.cad_database(infront=edges, mutual=False)
        system2 = instantiate(db2, d.constructed("Infront", "ahead"))
        baseline = compile_fixpoint(db2, system2, executor="rowbatch").run()
        assert values[system.root] == baseline[system2.root]
        assert columnar.replans >= 1
        assert "replans" in columnar.explain()


class TestEdgeCases:
    def test_constant_targets(self):
        db = _wide_db(rows=50)
        q = d.query(
            d.branch(
                d.each("x", "R1"),
                pred=d.gt(d.a("x", "a2"), 500),
                targets=[d.const("hit"), d.a("x", "a1")],
            )
        )
        plan = compile_query(db, q)
        rows = plan.execute(ExecutionContext(db))
        assert rows == Evaluator(db).eval_query(q)

    def test_empty_relation(self):
        wide = record("w", a0=STRING, a1=INTEGER, a2=INTEGER, a7=STRING)
        db = Database("empty")
        db.declare("R1", relation_type("r1", wide), set())
        db.declare("R2", relation_type("r2", wide), set())
        plan = compile_query(db, _join_query())
        assert plan.execute(ExecutionContext(db)) == set()

    def test_arithmetic_keys_and_params(self):
        db = Database("arith")
        db.declare("Base", paper.CARDREL, [(i,) for i in range(30)])
        q = d.query(
            d.branch(
                d.each("r", "Base"),
                d.each("s", "Base"),
                pred=d.eq(
                    d.a("r", "number"),
                    d.plus(d.a("s", "number"), d.param("k")),
                ),
                targets=[d.a("r", "number"), d.a("s", "number")],
            )
        )
        plan = compile_query(db, q, params={"k": 3})
        rows = plan.execute(ExecutionContext(db, params={"k": 3}))
        assert rows == {(i + 3, i) for i in range(27)}

    def test_unknown_executor_rejected(self):
        db = _wide_db(rows=20)
        plan = compile_query(db, _join_query())
        with pytest.raises(ValueError, match="unknown executor"):
            plan.execute(ExecutionContext(db), executor="vectorized")


class TestDatalogInheritsExecutor:
    def test_solve_compiled_columnar_matches_seminaive(self):
        program = parse_program(
            """
            path(X, Y) :- edge(X, Y).
            path(X, Y) :- edge(X, Z), path(Z, Y).
            """
        )
        rng = random.Random(4)
        edges = {(f"n{rng.randrange(12)}", f"n{rng.randrange(12)}") for _ in range(30)}
        engine = DatalogEngine(program, {"edge": set(edges)})
        semi = engine.solve("seminaive")
        for executor in ("batch", "rowbatch", "tuple"):
            compiled = engine.solve("compiled", executor=executor)
            assert compiled["path"] == semi["path"], executor


class TestGroupedProbeApi:
    def test_probe_table_views(self):
        from repro.relational import HashIndex

        rows = [("a", 1), ("a", 2), ("b", 3)]
        index = HashIndex((0,), rows)
        table = index.probe_table()
        assert ("a",) in table and ("c",) not in table
        assert table.get(("b",)) == [("b", 3)]
        scalar = index.probe_table(scalar=True)
        assert "a" in scalar and scalar.get("b") == [("b", 3)]
        assert scalar.get("missing") is None


class TestExplainUnderReplans:
    def test_per_operator_actuals_survive_replan(self):
        edges = e15_drift_edges(comps=4, sources=20, leaves=20)
        db = paper.cad_database(infront=edges, mutual=False)
        system = instantiate(db, d.constructed("Infront", "ahead"))
        program = compile_fixpoint(db, system, executor="batch")
        program.run()
        assert program.replans >= 1
        text = program.explain()
        assert "HASHJOIN" in text and "act=" in text
        assert "DELTAAPPLY" in text
