"""Unit tests for rows, relations, and the database scope."""

import pytest

from repro.errors import (
    KeyConstraintError,
    NameResolutionError,
    SchemaError,
    TypeMismatchError,
)
from repro.relational import Database, Relation, Row
from repro.types import INTEGER, STRING, record, relation_type

PART = record("partrec", part=STRING, weight=INTEGER)
PARTS = relation_type("partsrel", PART, key=("part",))
EDGE = record("edgerec", src=STRING, dst=STRING)
EDGES = relation_type("edgesrel", EDGE)


class TestRow:
    def setup_method(self):
        self.row = Row(PART, ("table", 30))

    def test_item_access(self):
        assert self.row["part"] == "table"

    def test_attribute_access(self):
        assert self.row.weight == 30

    def test_unknown_attribute_raises(self):
        with pytest.raises(AttributeError):
            _ = self.row.colour

    def test_immutable(self):
        with pytest.raises(AttributeError):
            self.row.part = "vase"

    def test_as_dict(self):
        assert self.row.as_dict() == {"part": "table", "weight": 30}

    def test_equality_with_tuple(self):
        assert self.row == ("table", 30)

    def test_equality_structural(self):
        same_shape = record("partrec2", part=STRING, weight=INTEGER)
        assert self.row == Row(same_shape, ("table", 30))

    def test_inequality_on_names(self):
        other = record("other", name=STRING, weight=INTEGER)
        assert self.row != Row(other, ("table", 30))

    def test_hash_matches_tuple_hash(self):
        assert hash(self.row) == hash(("table", 30))

    def test_arity_mismatch_raises(self):
        with pytest.raises(SchemaError):
            Row(PART, ("table",))


class TestRelationAssignment:
    def test_assign_and_len(self):
        rel = Relation("Parts", PARTS)
        rel.assign([("table", 30), ("vase", 2)])
        assert len(rel) == 2

    def test_assign_key_violation_keeps_old_value(self):
        rel = Relation("Parts", PARTS, [("table", 30)])
        with pytest.raises(KeyConstraintError):
            rel.assign([("a", 1), ("a", 2)])
        assert rel.rows() == frozenset({("table", 30)})

    def test_assign_type_violation(self):
        rel = Relation("Parts", PARTS)
        with pytest.raises(TypeMismatchError):
            rel.assign([("table", "heavy")])

    def test_insert_checks_key_against_existing(self):
        rel = Relation("Parts", PARTS, [("table", 30)])
        with pytest.raises(KeyConstraintError):
            rel.insert([("table", 31)])
        assert len(rel) == 1

    def test_insert_idempotent_tuple(self):
        rel = Relation("Parts", PARTS, [("table", 30)])
        rel.insert([("table", 30)])
        assert len(rel) == 1

    def test_delete_ignores_absent(self):
        rel = Relation("Parts", PARTS, [("table", 30)])
        rel.delete([("vase", 2)])
        assert len(rel) == 1

    def test_rows_accepts_row_objects(self):
        rel = Relation("Parts", PARTS)
        rel.assign([Row(PART, ("table", 30))])
        assert ("table", 30) in rel

    def test_membership_of_row_view(self):
        rel = Relation("Parts", PARTS, [("table", 30)])
        assert Row(PART, ("table", 30)) in rel

    def test_iteration_yields_rows(self):
        rel = Relation("Parts", PARTS, [("table", 30)])
        (row,) = list(rel)
        assert isinstance(row, Row)
        assert row.part == "table"

    def test_version_bumps_on_mutation(self):
        rel = Relation("Parts", PARTS)
        v0 = rel.version
        rel.assign([("table", 30)])
        assert rel.version > v0

    def test_snapshot_is_independent(self):
        rel = Relation("Parts", PARTS, [("table", 30)])
        snap = rel.snapshot()
        rel.insert([("vase", 2)])
        assert len(snap) == 1
        assert len(rel) == 2

    def test_coerce_rejects_scalars(self):
        rel = Relation("Parts", PARTS)
        with pytest.raises(TypeMismatchError):
            rel.assign(["table"])


class TestRelationIndexes:
    def test_index_lookup(self):
        rel = Relation("E", EDGES, [("a", "b"), ("a", "c"), ("b", "c")])
        idx = rel.index_on(("src",))
        assert sorted(idx.lookup(("a",))) == [("a", "b"), ("a", "c")]
        assert idx.lookup(("z",)) == []

    def test_index_cache_reused_until_mutation(self):
        rel = Relation("E", EDGES, [("a", "b")])
        idx1 = rel.index_on(("src",))
        idx2 = rel.index_on(("src",))
        assert idx1 is idx2
        rel.insert([("b", "c")])
        idx3 = rel.index_on(("src",))
        assert idx3 is not idx1
        assert idx3.lookup(("b",)) == [("b", "c")]

    def test_multi_attribute_index(self):
        rel = Relation("E", EDGES, [("a", "b"), ("a", "c")])
        idx = rel.index_on(("src", "dst"))
        assert idx.lookup(("a", "b")) == [("a", "b")]


class TestDatabase:
    def test_declare_and_lookup(self):
        db = Database("cad")
        rel = db.declare("Parts", PARTS)
        assert db["Parts"] is rel
        assert "Parts" in db

    def test_double_declare_rejected(self):
        db = Database()
        db.declare("Parts", PARTS)
        with pytest.raises(SchemaError):
            db.declare("Parts", PARTS)

    def test_unknown_relation_lists_known(self):
        db = Database()
        db.declare("Parts", PARTS)
        with pytest.raises(NameResolutionError, match="Parts"):
            db.relation("Nope")

    def test_declare_with_rows(self):
        db = Database()
        rel = db.declare("E", EDGES, [("a", "b")])
        assert len(rel) == 1
