"""The static analyzer: rule catalog, spans, front-door gates, extraction.

Four layers of coverage:

* a table-driven catalog test — every rule code has a minimal triggering
  program with its expected severity and span, so diagnostics stay
  anchored to real source positions;
* golden runs over ``examples/`` and the paper transcription — valid
  programs produce zero error-level diagnostics (no false positives),
  and whatever they do produce carries a non-zero span;
* the serving front door — ``Session.query``/``prepare`` reject unsafe
  programs with a span-carrying :class:`AnalysisError` before any
  compilation, ``DatalogEngine`` does the same via
  :class:`DatalogAnalysisError`, and provably-empty branches are pruned
  for ``query`` but never for ``prepare``;
* the extraction CLI that CI runs over the example scripts.
"""

import glob
import os

import pytest

from repro.analysis import (
    AnalysisError,
    DatalogAnalysisError,
    Diagnostic,
    Diagnostics,
    Span,
    analyze_datalog,
)
from repro.analysis.extract import analyze_file, extract_snippets
from repro.datalog.engine import DatalogEngine
from repro.datalog.parser import parse_program
from repro.dbpl.parser import parse_expression
from repro.dbpl.session import Session
from repro.errors import BindingError, TranslationError

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

SCHEMA = """
TYPE itemrec = RECORD name, kind: STRING; qty: INTEGER END;
     itemrel = RELATION name OF itemrec;
VAR Items: itemrel;

SELECTOR named (N: STRING) FOR Rel: itemrel;
BEGIN EACH r IN Rel: r.name = N END named;
"""


def lint_session() -> Session:
    s = Session(analysis="lint")
    s.execute(SCHEMA)
    return s


def strict_session(rows=()) -> Session:
    s = Session()
    s.execute(SCHEMA)
    if rows:
        s.insert("Items", rows)
    return s


# ---------------------------------------------------------------------------
# The rule catalog, one minimal trigger per code
# ---------------------------------------------------------------------------

#: (source, expected code, severity, span line, span column)
DBPL_CATALOG = [
    ("{EACH x IN Nope: TRUE}", "DBPL001", "error", 1, 12),
    ("Items[nosel()]", "DBPL002", "error", 1, 1),
    ("Items{nocon()}", "DBPL003", "error", 1, 1),
    ("Items[named()]", "DBPL004", "error", 1, 1),
    ('{EACH i IN Items: i.colour = "red"}', "DBPL005", "error", 1, 19),
    ("{EACH i IN Items: i.name = j.name}", "DBPL006", "error", 1, 28),
    ("{EACH i IN Items: i.name = 3}", "DBPL007", "error", 1, 19),
    ("{EACH i IN Items: <i.name> IN Items}", "DBPL008", "error", 1, 19),
    ("{EACH i, i IN Items: TRUE}", "DBPL009", "error", 1, 10),
    ("{EACH i IN Items: i.qty = 1 AND i.qty = 2}", "DBPL010", "warning", 1, 33),
    ("{EACH i IN Items: i.qty = i.qty}", "DBPL011", "hint", 1, 19),
    ("{EACH i IN Items: 1 = 2}", "DBPL012", "warning", 1, 2),
    ("{EACH a IN Items, EACH b IN Items: TRUE}", "DBPL013", "warning", 1, 2),
    ("{EACH i IN Items: SOME i IN Items (TRUE)}", "DBPL014", "warning", 1, 19),
    ("VAR X: mystery;", "DBPL015", "error", 1, 8),
    ("TYPE bad = RANGE 9..1;", "DBPL016", "error", 1, 12),
    (
        "TYPE pairrec = RECORD x, y: STRING END;\n"
        "     pairrel = RELATION ... OF pairrec;\n"
        "CONSTRUCTOR wide FOR Rel: itemrel (): pairrel;\n"
        "BEGIN <r.name> OF EACH r IN Rel: TRUE\n"
        "END wide;",
        "DBPL017", "error", 4, 7,
    ),
    (
        "TYPE pairrec = RECORD x, y: STRING END;\n"
        "     pairrel = RELATION ... OF pairrec;\n"
        "CONSTRUCTOR twoid FOR Rel: pairrel (): pairrel;\n"
        "BEGIN EACH a IN Rel, EACH b IN Rel: TRUE\n"
        "END twoid;",
        "DBPL018", "error", 4, 7,
    ),
    ("VAR Items: itemrel;", "DBPL019", "error", 1, 5),
    (
        "TYPE negrec = RECORD a: STRING END;\n"
        "     negrel = RELATION ... OF negrec;\n"
        "CONSTRUCTOR neg FOR Rel: negrel (): negrel;\n"
        "BEGIN EACH r IN Rel: NOT (r IN Rel{neg})\n"
        "END neg;",
        "DBPL020", "error", 4, 32,
    ),
    ("VAR n: INTEGER;", "DBPL021", "error", 1, 5),
    ("TYPE dup = RECORD a, a: STRING END;", "DBPL022", "error", 1, 19),
]

#: (source, edb, positive_only, code, severity, line, column)
DATALOG_CATALOG = [
    ("p(X, Y) :- q(X).", None, False, "DBPL101", "error", 1, 1),
    ("big(X) :- size(X), Y > 2.", None, False, "DBPL102", "warning", 1, 20),
    ("p(X) :- q(X).", set(), False, "DBPL103", "warning", 1, 9),
    (
        "p(X) :- q(X).\np(X, Y) :- q(X), q(Y).",
        None, False, "DBPL104", "warning", 2, 1,
    ),
    ("p(X) :- q(X), \\+ r(X).", None, True, "DBPL105", "error", 1, 15),
    ("p(X) :- q(X), \\+ p(X).", None, False, "DBPL106", "error", 1, 15),
    ("p(X) :- q(X), \\+ r(X, Y).", None, False, "DBPL107", "error", 1, 15),
    ("p(X) :- q(X, Z).", None, False, "DBPL108", "hint", 1, 1),
]


class TestRuleCatalog:
    @pytest.mark.parametrize(
        "source,code,severity,line,column",
        DBPL_CATALOG,
        ids=[c[1] for c in DBPL_CATALOG],
    )
    def test_dbpl_code_fires_with_span(self, source, code, severity, line, column):
        diags = lint_session().check(source)
        hits = diags.filter(code=code)
        assert hits, f"{code} did not fire; got {[d.render() for d in diags]}"
        diag = hits[0]
        assert diag.severity == severity
        assert diag.span is not None and not diag.span.is_zero
        assert (diag.span.line, diag.span.column) == (line, column)

    @pytest.mark.parametrize(
        "source,edb,positive_only,code,severity,line,column",
        DATALOG_CATALOG,
        ids=[c[3] for c in DATALOG_CATALOG],
    )
    def test_datalog_code_fires_with_span(
        self, source, edb, positive_only, code, severity, line, column
    ):
        diags = analyze_datalog(
            parse_program(source), edb_predicates=edb, positive_only=positive_only
        )
        hits = diags.filter(code=code)
        assert hits, f"{code} did not fire; got {[d.render() for d in diags]}"
        diag = hits[0]
        assert diag.severity == severity
        assert diag.span is not None and not diag.span.is_zero
        assert (diag.span.line, diag.span.column) == (line, column)

    def test_syntax_errors_become_dbpl000(self):
        diags = lint_session().check("{EACH i IN")
        assert diags.filter(code="DBPL000") and diags.has_errors
        assert diags[0].span is not None and not diags[0].span.is_zero

    def test_clean_query_has_no_diagnostics(self):
        assert not lint_session().check('{EACH i IN Items: i.name = "x"}')

    def test_mutually_recursive_constructors_accepted(self):
        # ahead references above before its declaration (the paper's CAD
        # module shape): the signature pre-pass must resolve it.
        source = (
            "TYPE arec = RECORD x, y: STRING END;\n"
            "     arel = RELATION ... OF arec;\n"
            "CONSTRUCTOR f FOR Rel: arel (): arel;\n"
            "BEGIN EACH r IN Rel: TRUE,\n"
            "      <r.x, s.y> OF EACH r IN Rel,\n"
            "           EACH s IN Rel{g}: r.y = s.x\n"
            "END f;\n"
            "CONSTRUCTOR g FOR Rel: arel (): arel;\n"
            "BEGIN EACH r IN Rel: TRUE,\n"
            "      <r.x, s.y> OF EACH r IN Rel,\n"
            "           EACH s IN Rel{f}: r.y = s.x\n"
            "END g;"
        )
        diags = lint_session().check(source)
        assert not diags.has_errors, [d.render() for d in diags]


# ---------------------------------------------------------------------------
# Diagnostics engine mechanics
# ---------------------------------------------------------------------------


class TestDiagnosticsEngine:
    def test_span_rendering_and_shift(self):
        span = Span(2, 5, 2, 9)
        assert str(span) == "2:5-9"
        moved = span.shifted(10, 3)
        assert (moved.line, moved.column) == (12, 5)  # column shift is line-1 only
        first_line = Span(1, 5, 3, 2).shifted(10, 3)
        assert (first_line.line, first_line.column) == (11, 8)
        assert (first_line.end_line, first_line.end_column) == (13, 2)

    def test_collector_ordering_and_filters(self):
        diags = Diagnostics()
        diags.warning("DBPL010", "later", span=Span(3, 1))
        diags.error("DBPL001", "earlier", span=Span(1, 2))
        diags.hint("DBPL011", "hint", span=Span(2, 1))
        assert diags.has_errors and len(diags) == 3
        assert [d.code for d in diags.sorted()] == ["DBPL001", "DBPL010", "DBPL011"]
        assert [d.code for d in diags.errors] == ["DBPL001"]
        assert diags.filter(severity="hint")[0].message == "hint"

    def test_raise_if_errors_carries_first_span_and_count(self):
        diags = Diagnostics()
        diags.error("DBPL001", "one", span=Span(1, 4))
        diags.error("DBPL002", "two", span=Span(2, 1))
        with pytest.raises(AnalysisError) as info:
            diags.raise_if_errors("rejected")
        err = info.value
        assert "(+1 more)" in str(err)
        assert (err.line, err.column) == (1, 4)
        assert err.diagnostics is diags

    def test_render_is_stable(self):
        diag = Diagnostic("DBPL007", "error", "bad compare", Span(1, 3, 1, 9))
        assert diag.render() == "DBPL007 error at 1:3-9: bad compare"


# ---------------------------------------------------------------------------
# The serving front door
# ---------------------------------------------------------------------------


class TestSessionFrontDoor:
    def test_strict_query_rejects_before_compilation(self):
        s = strict_session()
        with pytest.raises(AnalysisError) as info:
            s.query("{EACH x IN Nope: TRUE}")
        assert info.value.span is not None and info.value.span.line == 1
        assert info.value.diagnostics.has_errors

    def test_strict_prepare_rejects_with_span(self):
        s = strict_session()
        with pytest.raises(AnalysisError) as info:
            s.prepare('{EACH i IN Items: i.colour = "x"}')
        assert not info.value.span.is_zero

    def test_interpreted_mode_is_gated_too(self):
        with pytest.raises(AnalysisError):
            strict_session().query("{EACH x IN Nope: TRUE}", mode="interpreted")

    def test_lint_mode_reports_without_raising(self):
        s = Session(analysis="lint")
        s.execute(SCHEMA)
        diags = s.check("{EACH x IN Nope: TRUE}")
        assert diags.has_errors and s.last_diagnostics is diags

    def test_off_mode_skips_analysis(self):
        s = Session(analysis="off")
        s.execute(SCHEMA)
        s.insert("Items", [("a", "k", 1)])
        assert s.query('{EACH i IN Items: i.name = "a"}') == {("a", "k", 1)}
        assert not s.last_diagnostics

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            Session(analysis="pedantic")

    def test_hook_sees_warnings_on_accepted_queries(self):
        seen = []
        s = Session(on_diagnostic=seen.append)
        s.execute(SCHEMA)
        s.query("{EACH i IN Items: i.qty = 1 AND i.qty = 2}")
        assert [d.code for d in seen] == ["DBPL010"]

    def test_constructed_prepare_still_raises_binding_error(self):
        # The pre-existing contract: Constructed ranges cannot be
        # prepared, and that check outranks the analyzer gate.
        s = strict_session()
        with pytest.raises(BindingError):
            s.prepare("Items{anything()}")

    def test_execute_records_but_does_not_reject(self):
        # Binder errors stay authoritative for declarations.
        s = strict_session()
        with pytest.raises(BindingError, match="unknown type"):
            s.execute("VAR Y: mystery;")
        assert s.last_diagnostics.has_errors  # the analyzer saw it too

    def test_analysis_cache_hits_and_invalidates_on_declarations(self):
        s = strict_session(rows=[("a", "k", 1)])
        src = '{EACH i IN Items: i.name = "a"}'
        s.query(src)
        s.query(src)
        assert len(s._analysis_cache) == 1
        s.execute("TYPE otherrec = RECORD z: STRING END;")
        s.query(src)  # new scope stamp -> new cache entry
        assert len(s._analysis_cache) == 2


class TestDeadBranchPruning:
    ROWS = [("a", "k", 1), ("b", "k", 2)]

    def test_contradictory_union_arm_is_pruned(self):
        s = strict_session(rows=self.ROWS)
        rows = s.query(
            '{EACH i IN Items: i.qty = 1, EACH i IN Items: i.qty = 2 AND i.qty = 3}'
        )
        assert rows == {("a", "k", 1)}

    def test_all_dead_query_still_executes(self):
        s = strict_session(rows=self.ROWS)
        assert s.query("{EACH i IN Items: i.qty = 2 AND i.qty = 3}") == set()

    def test_prepare_never_prunes_rebindable_branches(self):
        # The "contradiction" is between two rebindable constants: after
        # prepare, rebinding both to the same value must revive the branch.
        s = strict_session(rows=self.ROWS)
        prepared = s.prepare("{EACH i IN Items: i.qty = 2 AND i.qty = 3}")
        assert prepared.execute(2, 2) == {("b", "k", 2)}


class TestDatalogGate:
    def test_unsafe_rule_rejected_with_span(self):
        with pytest.raises(DatalogAnalysisError) as info:
            DatalogEngine(parse_program("p(X, Y) :- q(X)."))
        assert isinstance(info.value, TranslationError)
        assert not info.value.span.is_zero

    def test_negation_rejected_by_positive_engine(self):
        with pytest.raises(TranslationError, match="positive fragment"):
            DatalogEngine(parse_program("p(X) :- q(X), \\+ r(X)."))

    def test_warnings_survive_on_accepted_engine(self):
        engine = DatalogEngine(
            parse_program("big(X) :- size(X), Y > 2.\nsize(a)."),
        )
        assert "DBPL102" in engine.diagnostics.codes()
        with pytest.raises(TranslationError, match="unbound"):
            engine.solve()

    def test_clean_program_solves(self):
        engine = DatalogEngine(
            parse_program("tc(X, Y) :- e(X, Y).\ntc(X, Y) :- e(X, Z), tc(Z, Y)."),
            {"e": {(1, 2), (2, 3)}},
        )
        assert engine.solve()["tc"] == {(1, 2), (2, 3), (1, 3)}
        assert not engine.diagnostics.has_errors


# ---------------------------------------------------------------------------
# Golden runs: examples and the paper transcription stay clean
# ---------------------------------------------------------------------------


class TestGoldenCorpora:
    @pytest.mark.parametrize(
        "path",
        sorted(glob.glob(os.path.join(REPO, "examples", "*.py"))),
        ids=os.path.basename,
    )
    def test_examples_have_no_analyzer_errors(self, path):
        report = analyze_file(path)
        rendered = report.render()
        assert not report.has_errors, rendered
        for snippet, diag in report.diagnostics:
            assert diag.severity in ("warning", "hint"), rendered
            span = snippet.shift(diag.span)
            assert span is not None and not span.is_zero, rendered

    def test_paper_transcription_queries_are_clean(self):
        from repro import paper
        from repro.analysis.checks import Scope, analyze_query

        db = paper.cad_database(mutual=True)
        scope = Scope.from_db(db)
        for source in (
            "Infront[refint]",
            'Infront[hidden_by("table")]',
            "Infront{ahead(Ontop)}",
            "Ontop{above(Infront)}",
            'Infront[hidden_by("table")]{ahead(Ontop)}',
            '{EACH r IN Infront: r.back = "door"}',
        ):
            result = analyze_query(parse_expression(source), scope)
            assert not result.diagnostics.has_errors, (
                source,
                [d.render() for d in result.diagnostics],
            )
            for diag in result.diagnostics:
                assert diag.span is not None and not diag.span.is_zero


class TestExtraction:
    HOST = (
        "from repro.dbpl import Session\n"
        "s = Session()\n"
        's.execute("""\n'
        "TYPE r = RECORD a: STRING END;\n"
        "     rl = RELATION ... OF r;\n"
        "VAR R: rl;\n"
        '""")\n'
        'rows = s.query(\'{EACH x IN Nope: TRUE}\')\n'
    )

    def test_snippets_found_in_order_with_positions(self):
        snippets = extract_snippets(self.HOST)
        assert [s.call for s in snippets] == ["execute", "query"]
        assert snippets[0].line == 3  # opening quote line; content flows on
        assert snippets[1].line == 8

    def test_diagnostics_reanchor_to_host_lines(self):
        import tempfile

        with tempfile.NamedTemporaryFile(
            "w", suffix=".py", delete=False
        ) as handle:
            handle.write(self.HOST)
            path = handle.name
        try:
            report = analyze_file(path)
        finally:
            os.unlink(path)
        assert report.has_errors
        (snippet, diag) = next(
            (s, d) for s, d in report.diagnostics if d.code == "DBPL001"
        )
        span = snippet.shift(diag.span)
        assert span.line == 8  # host-file line of the bad query literal
        assert span.column > snippet.column  # shifted past the call prefix

    def test_non_literal_arguments_are_skipped(self):
        text = "s.query(make_source())\ns.execute(PREFIX + body)\n"
        assert extract_snippets(text) == []
