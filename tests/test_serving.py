"""Serving-layer tests: compiled session routing, prepared queries, the
plan cache, snapshot reads, and the writer/reader concurrency contract."""

import threading

import pytest

from repro.compiler import EXECUTOR_NAMES
from repro.dbpl import (
    DatabaseSnapshot,
    PlanCache,
    PreparedQuery,
    Session,
    parameterize,
    parse_expression,
)
from repro.errors import BindingError
from repro.relational.stats import PLAN_EPOCH_FLOOR

SCHEMA = """
MODULE serving;

TYPE name       = STRING;
     factrec    = RECORD seq: INTEGER; fk: name; tag: name END;
     factrel    = RELATION seq OF factrec;
     dimrec     = RECORD k: name; grp: name; w: INTEGER END;
     dimrel     = RELATION k OF dimrec;
     annrec     = RECORD grp: name; note: name END;
     annrel     = RELATION grp, note OF annrec;

VAR Fact:  factrel;
    Dim:   dimrel;
    Ann:   annrel;

SELECTOR tagged (T: name) FOR Rel: factrel;
BEGIN EACH f IN Rel: f.tag = T END tagged;

END serving.
"""

JOIN3 = (
    "{<f.seq, g.w, h.note> OF EACH f IN Fact, EACH g IN Dim, EACH h IN Ann: "
    'f.fk = g.k AND g.grp = h.grp AND g.w >= 40}'
)


def make_session(**kwargs) -> Session:
    s = Session(**kwargs)
    s.execute(SCHEMA)
    s.assign(
        "Fact",
        [(i, f"k{i % 7}", "hot" if i % 3 else "cold") for i in range(60)],
    )
    s.assign("Dim", [(f"k{j}", f"g{j % 3}", j * 20) for j in range(7)])
    s.assign("Ann", [(f"g{j}", f"note{j}") for j in range(3)])
    return s


class TestCompiledRouting:
    """Satellite 1: the front door runs the compiled executor pipeline."""

    def test_query_answers_match_interpreted_on_every_backend(self):
        s = make_session()
        sources = [
            JOIN3,
            '{EACH f IN Fact: f.tag = "hot"}',
            "{EACH g IN Dim: g.w > 40 AND g.w < 120}",
            "Fact",
            'Fact[tagged("cold")]',
        ]
        for source in sources:
            reference = s.query(source, mode="interpreted")
            for executor in EXECUTOR_NAMES:
                assert s.query(source, executor=executor) == reference, (
                    source,
                    executor,
                )

    def test_default_path_populates_the_plan_cache(self):
        s = make_session()
        s.query(JOIN3)
        assert s.plan_cache.misses == 1
        s.query(JOIN3)
        assert s.plan_cache.hits == 1

    def test_interpreted_mode_bypasses_the_cache(self):
        s = make_session()
        s.query(JOIN3, mode="interpreted")
        assert s.plan_cache.misses == 0 and len(s.plan_cache) == 0

    def test_session_level_executor_default(self):
        s = make_session(executor="tuple")
        assert s.query(JOIN3) == s.query(JOIN3, mode="interpreted")
        (key,) = s.plan_cache.keys()
        assert key[1] == "tuple"

    def test_unknown_executor_raises(self):
        s = make_session()
        with pytest.raises(ValueError):
            s.query(JOIN3, executor="warp-drive")

    def test_compile_fallback_keeps_answers(self):
        # ALL-quantified predicates exercise the residual-evaluation path;
        # whatever the compiler does with them, answers must match the
        # reference evaluator.
        s = make_session()
        source = "{EACH g IN Dim: ALL h IN Ann (g.grp = h.grp OR g.w > 100)}"
        assert s.query(source) == s.query(source, mode="interpreted")


class TestParameterize:
    def test_extracts_compared_constants_in_order(self):
        node = parse_expression(
            '{EACH f IN Fact: f.tag = "hot" AND f.seq >= 10}'
        )
        shape, constants = parameterize(node)
        assert constants == ("hot", 10)

    def test_shapes_share_across_constants(self):
        a = parse_expression('{EACH f IN Fact: f.tag = "hot"}')
        b = parse_expression('{EACH f IN Fact: f.tag = "cold"}')
        assert parameterize(a)[0] == parameterize(b)[0]

    def test_target_constants_stay_in_the_shape(self):
        a = parse_expression('{<f.seq, "x"> OF EACH f IN Fact: TRUE}')
        b = parse_expression('{<f.seq, "y"> OF EACH f IN Fact: TRUE}')
        assert parameterize(a)[0] != parameterize(b)[0]


class TestPreparedQueries:
    """Tentpole: compile once, rebind constants per execution."""

    def test_prepared_matches_interpreted(self):
        s = make_session()
        assert s.prepare(JOIN3).execute() == s.query(JOIN3, mode="interpreted")

    def test_repeat_execution_skips_recompilation(self):
        s = make_session()
        prepared = s.prepare(JOIN3)
        for _ in range(5):
            prepared.execute()
        assert prepared.executions == 5
        # Preparing the same shape again is a cache hit, same plan object.
        again = s.prepare(JOIN3)
        assert again.plan is prepared.plan
        assert s.plan_cache.hits >= 1 and s.plan_cache.misses == 1

    def test_rebinding_different_constants(self):
        s = make_session()
        prepared = s.prepare('{EACH f IN Fact: f.tag = "hot"}')
        hot = prepared.execute()
        cold = prepared.execute("cold")
        assert hot == s.query('{EACH f IN Fact: f.tag = "hot"}', mode="interpreted")
        assert cold == s.query('{EACH f IN Fact: f.tag = "cold"}', mode="interpreted")
        # No-arg execution reverts to the constants of the prepared text.
        assert prepared.execute() == hot

    def test_bind_returns_independent_handle_on_shared_plan(self):
        s = make_session()
        hot = s.prepare('{EACH f IN Fact: f.tag = "hot"}')
        cold = hot.bind("cold")
        assert isinstance(cold, PreparedQuery)
        assert cold.plan is hot.plan
        assert cold.execute() == s.query(
            '{EACH f IN Fact: f.tag = "cold"}', mode="interpreted"
        )
        assert hot.execute() == s.query(
            '{EACH f IN Fact: f.tag = "hot"}', mode="interpreted"
        )

    def test_wrong_arity_raises(self):
        s = make_session()
        prepared = s.prepare('{EACH f IN Fact: f.tag = "hot"}')
        with pytest.raises(BindingError):
            prepared.execute("a", "b")
        with pytest.raises(BindingError):
            prepared.bind()

    def test_prepare_bare_and_selected_ranges(self):
        s = make_session()
        assert s.prepare("Fact").execute() == s.query("Fact", mode="interpreted")
        assert s.prepare('Fact[tagged("hot")]').execute() == s.query(
            'Fact[tagged("hot")]', mode="interpreted"
        )

    def test_constructed_ranges_cannot_be_prepared(self):
        s = make_session()
        with pytest.raises(BindingError):
            s.prepare("Fact{anything()}")


class TestPlanCache:
    """Satellite 4: hits, epoch invalidation, bounded eviction."""

    def test_hit_on_repeat_query(self):
        s = make_session()
        s.query(JOIN3)
        s.query(JOIN3)
        s.query(JOIN3)
        assert s.plan_cache.misses == 1 and s.plan_cache.hits == 2

    def test_constants_share_one_entry(self):
        s = make_session()
        s.query('{EACH f IN Fact: f.tag = "hot"}')
        s.query('{EACH f IN Fact: f.tag = "cold"}')
        assert len(s.plan_cache) == 1 and s.plan_cache.hits == 1

    def test_miss_after_stats_epoch_moves(self):
        s = make_session()
        s.query(JOIN3)
        assert s.plan_cache.misses == 1
        # Small writes must NOT invalidate...
        s.insert("Fact", [(1000, "k0", "hot")])
        s.query(JOIN3)
        assert s.plan_cache.hits == 1 and s.plan_cache.invalidations == 0
        # ...but drifting past the staleness floor must.
        s.insert(
            "Fact",
            [(2000 + i, "k1", "hot") for i in range(2 * PLAN_EPOCH_FLOOR)],
        )
        s.query(JOIN3)
        assert s.plan_cache.misses == 2
        assert s.plan_cache.invalidations >= 1

    def test_lru_eviction_order(self):
        cache = PlanCache(capacity=2)
        cache.put(("a",), "plan-a", epoch=0)
        cache.put(("b",), "plan-b", epoch=0)
        assert cache.get(("a",), epoch=0) == "plan-a"  # refresh a
        cache.put(("c",), "plan-c", epoch=0)  # evicts b, the LRU entry
        assert cache.evictions == 1
        assert cache.get(("b",), epoch=0) is None
        assert cache.get(("a",), epoch=0) == "plan-a"
        assert cache.get(("c",), epoch=0) == "plan-c"

    def test_zero_capacity_disables_caching(self):
        s = make_session(plan_cache_size=0)
        s.query(JOIN3)
        s.query(JOIN3)
        assert s.plan_cache.hits == 0 and s.plan_cache.misses == 2
        assert len(s.plan_cache) == 0

    def test_first_store_wins_on_racing_compiles(self):
        cache = PlanCache(capacity=4)
        assert cache.put(("k",), "first", epoch=0) == "first"
        assert cache.put(("k",), "second", epoch=0) == "first"


class TestSnapshots:
    """Tentpole: version-stamped repeatable reads."""

    def test_snapshot_is_version_stamped(self):
        s = make_session()
        snap = s.snapshot()
        v = snap.version("Fact")
        s.insert("Fact", [(900, "k0", "hot")])
        assert s.relation("Fact").version == v + 1
        assert snap.version("Fact") == v

    def test_snapshot_query_ignores_later_writes(self):
        s = make_session()
        before = s.query(JOIN3)
        snap = s.snapshot()
        s.insert("Fact", [(901 + i, "k3", "hot") for i in range(50)])
        assert s.query(JOIN3, snapshot=snap) == before
        assert s.query(JOIN3) != before

    def test_snapshot_applies_to_prepared_queries(self):
        s = make_session()
        prepared = s.prepare('{EACH f IN Fact: f.tag = "hot"}')
        snap = s.snapshot()
        pinned = prepared.execute(snapshot=snap)
        s.insert("Fact", [(950, "k2", "hot")])
        assert prepared.execute(snapshot=snap) == pinned
        assert len(prepared.execute()) == len(pinned) + 1

    def test_snapshot_consistent_across_all_backends(self):
        s = make_session()
        snap = s.snapshot()
        expected = s.query(JOIN3, snapshot=snap)
        s.insert("Fact", [(960 + i, "k1", "hot") for i in range(40)])
        for executor in EXECUTOR_NAMES:
            assert s.query(JOIN3, executor=executor, snapshot=snap) == expected

    def test_snapshot_of_database_object(self):
        s = make_session()
        snap = DatabaseSnapshot(s.db)
        assert set(snap.views) == {"Fact", "Dim", "Ann"}
        assert len(snap.rows("Dim")) == 7


class TestTornReads:
    """Satellite 2: a writer mutating mid-iteration must never tear a
    reader — no exceptions, no phantom (uncommitted-state) rows."""

    N_ROWS = 400
    N_ROUNDS = 60

    def _stress(self, read_once):
        s = Session()
        s.execute(
            """
            MODULE torn;
            TYPE rec = RECORD a, b: INTEGER END;
                 rel = RELATION a OF rec;
            VAR R: rel;
            END torn.
            """
        )
        s.assign("R", [(i, 0) for i in range(self.N_ROWS)])
        stop = threading.Event()
        errors = []

        def writer():
            generation = 0
            while not stop.is_set():
                generation += 1
                # One atomic commit: every row moves to `generation`.
                s.assign("R", [(i, generation) for i in range(self.N_ROWS)])

        def reader():
            try:
                for _ in range(self.N_ROUNDS):
                    rows = read_once(s)
                    assert len(rows) == self.N_ROWS, "phantom or lost rows"
                    generations = {b for _, b in rows}
                    assert len(generations) == 1, (
                        f"torn read across commits: {sorted(generations)[:4]}"
                    )
            except Exception as exc:  # noqa: BLE001 - recorded for the assert
                errors.append(exc)

        threads = [threading.Thread(target=writer)] + [
            threading.Thread(target=reader) for _ in range(3)
        ]
        for t in threads:
            t.start()
        for t in threads[1:]:
            t.join()
        stop.set()
        threads[0].join()
        assert not errors, errors[0]

    def test_raw_list_iteration_is_never_torn(self):
        self._stress(lambda s: list(s.relation("R").raw_list()))

    def test_snapshot_reads_are_never_torn(self):
        def read(s):
            snap = s.snapshot()
            return snap.rows("R")

        self._stress(read)

    def test_compiled_snapshot_queries_under_writer_churn(self):
        def read(s):
            snap = s.snapshot()
            return list(s.query("{EACH r IN R: r.a >= 0}", snapshot=snap))

        self._stress(read)


class TestConcurrentServing:
    """CI stress: mixed prepared reads and writes from many threads."""

    def test_threaded_clients_share_the_plan_cache(self):
        s = make_session()
        reference = s.query(JOIN3, mode="interpreted")
        errors = []

        def client():
            try:
                prepared = s.prepare(JOIN3)
                for _ in range(8):
                    assert prepared.execute() is not None
            except Exception as exc:  # noqa: BLE001 - recorded for the assert
                errors.append(exc)

        threads = [threading.Thread(target=client) for _ in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors, errors[0]
        # All clients converged on one compiled plan.
        assert len(s.plan_cache) == 1
        assert s.query(JOIN3) == reference

    def test_readers_survive_concurrent_inserts(self):
        s = make_session()
        stop = threading.Event()
        errors = []

        def writer():
            seq = 10_000
            while not stop.is_set():
                seq += 1
                s.insert("Fact", [(seq, f"k{seq % 7}", "hot")])

        def reader():
            try:
                prepared = s.prepare(JOIN3)
                snap_rows = None
                for i in range(40):
                    if i % 4 == 0:
                        snap = s.snapshot()
                        snap_rows = prepared.execute(snapshot=snap)
                        again = prepared.execute(snapshot=snap)
                        assert again == snap_rows, "snapshot not repeatable"
                    else:
                        prepared.execute()
            except Exception as exc:  # noqa: BLE001 - recorded for the assert
                errors.append(exc)

        threads = [threading.Thread(target=writer)] + [
            threading.Thread(target=reader) for _ in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads[1:]:
            t.join()
        stop.set()
        threads[0].join()
        assert not errors, errors[0]


class TestStatsEpoch:
    def test_epoch_stable_under_small_writes(self):
        s = make_session()
        e0 = s.db.stats.epoch()
        s.insert("Fact", [(5000, "k0", "hot")])
        assert s.db.stats.epoch() == e0

    def test_epoch_moves_past_staleness_threshold(self):
        s = make_session()
        e0 = s.db.stats.epoch()
        s.insert(
            "Fact",
            [(6000 + i, "k0", "hot") for i in range(2 * PLAN_EPOCH_FLOOR)],
        )
        assert s.db.stats.epoch() > e0

    def test_epoch_moves_when_relations_appear(self):
        s = make_session()
        e0 = s.db.stats.epoch()
        s.execute(
            """
            MODULE extra;
            TYPE xrec = RECORD x: INTEGER END;
                 xrel = RELATION x OF xrec;
            VAR Extra: xrel;
            END extra.
            """
        )
        assert s.db.stats.epoch() > e0

    def test_bump_epoch_forces_invalidation(self):
        s = make_session()
        s.query(JOIN3)
        s.db.stats.bump_epoch()
        s.query(JOIN3)
        assert s.plan_cache.misses == 2
