"""Constructor fundamentals: definition checks, ahead_2, simple recursion.

These tests execute the paper's section 2.3/3.1 examples and assert the
exact values the text claims.
"""

import pytest

from repro import paper
from repro.calculus import Evaluator, dsl as d
from repro.constructors import (
    apply_constructor,
    construct_bounded,
    define_constructor,
)
from repro.errors import PositivityError, SchemaError
from repro.relational import Database

from helpers import SCENE_INFRONT, SCENE_OBJECTS, SCENE_ONTOP, transitive_closure

INFRONT_TC = transitive_closure(SCENE_INFRONT)


@pytest.fixture
def db():
    return paper.cad_database(
        SCENE_OBJECTS, SCENE_INFRONT, SCENE_ONTOP, mutual=False
    )


class TestAhead2:
    def test_value_matches_explicit_expression(self, db):
        result = apply_constructor(db, "Infront", "ahead2")
        expected = set(SCENE_INFRONT) | {
            (f, b2) for (f, b) in SCENE_INFRONT for (f2, b2) in SCENE_INFRONT if b == f2
        }
        assert result.rows == expected

    def test_grows_base_relation(self, db):
        result = apply_constructor(db, "Infront", "ahead2")
        assert set(SCENE_INFRONT) <= set(result.rows)

    def test_result_type(self, db):
        result = apply_constructor(db, "Infront", "ahead2")
        assert result.result_type.name == "aheadrel"
        assert result.schema.attribute_names == ("head", "tail")

    def test_non_recursive_converges_fast(self, db):
        result = apply_constructor(db, "Infront", "ahead2", mode="naive")
        # one productive iteration plus the fixpoint-confirming one
        assert result.stats.iterations <= 3

    def test_as_relation(self, db):
        rel = apply_constructor(db, "Infront", "ahead2").as_relation("Ahead2")
        assert len(rel) == 5


class TestSimpleRecursiveAhead:
    def test_transitive_closure(self, db):
        result = apply_constructor(db, "Infront", "ahead")
        assert result.rows == INFRONT_TC

    def test_modes_agree(self, db):
        naive = apply_constructor(db, "Infront", "ahead", mode="naive")
        semi = apply_constructor(db, "Infront", "ahead", mode="seminaive")
        auto = apply_constructor(db, "Infront", "ahead", mode="auto")
        assert naive.rows == semi.rows == auto.rows == INFRONT_TC

    def test_auto_selects_seminaive(self, db):
        result = apply_constructor(db, "Infront", "ahead")
        assert result.stats.mode == "seminaive"

    def test_empty_base(self):
        db = paper.cad_database(mutual=False)
        result = apply_constructor(db, "Infront", "ahead")
        assert result.rows == frozenset()

    def test_cyclic_base_terminates(self):
        db = paper.cad_database(
            infront=[("a", "b"), ("b", "c"), ("c", "a")], mutual=False
        )
        result = apply_constructor(db, "Infront", "ahead")
        assert result.rows == {(x, y) for x in "abc" for y in "abc"}

    def test_paper_repeat_loop_program_equivalent(self, db):
        """The REPEAT/UNTIL program of section 3.1 computes the same value."""
        infront = db["Infront"].rows()
        ahead: set = set()
        while True:
            oldahead = set(ahead)
            ahead = set(infront) | {
                (f, t)
                for (f, b) in infront
                for (h, t) in oldahead
                if b == h
            }
            if ahead == oldahead:
                break
        result = apply_constructor(db, "Infront", "ahead")
        assert result.rows == ahead

    def test_constructed_range_inside_query(self, db):
        """{EACH r IN Infront{ahead}: r.head = "rug"} via the evaluator."""
        q = d.query(
            d.branch(
                d.each("r", d.constructed("Infront", "ahead")),
                pred=d.eq(d.a("r", "head"), "rug"),
                targets=[d.a("r", "tail")],
            )
        )
        assert Evaluator(db).eval_query(q) == {("table",), ("chair",), ("door",)}


class TestBoundedSequence:
    """Infront{ahead} = lim Infront{ahead_n} (section 3.1)."""

    def test_step_zero_is_empty(self, db):
        assert construct_bounded(db, d.constructed("Infront", "ahead"), 0).rows == frozenset()

    def test_step_one_is_base(self, db):
        result = construct_bounded(db, d.constructed("Infront", "ahead"), 1)
        assert result.rows == frozenset(SCENE_INFRONT)

    def test_sequence_is_monotone(self, db):
        node = d.constructed("Infront", "ahead")
        previous = frozenset()
        for steps in range(6):
            current = construct_bounded(db, node, steps).rows
            assert previous <= current
            previous = current

    def test_limit_reached(self, db):
        node = d.constructed("Infront", "ahead")
        full = apply_constructor(db, "Infront", "ahead").rows
        assert construct_bounded(db, node, 10).rows == full

    def test_limit_stable_beyond_convergence(self, db):
        node = d.constructed("Infront", "ahead")
        assert (
            construct_bounded(db, node, 10).rows
            == construct_bounded(db, node, 50).rows
        )


class TestDefinitionValidation:
    def test_wrong_target_arity_rejected(self):
        db = Database()
        db.declare("E", paper.INFRONTREL)
        body = d.query(
            d.branch(d.each("r", "Rel"), targets=[d.a("r", "front")])
        )
        with pytest.raises(SchemaError, match="arity"):
            define_constructor(
                db, "bad", "Rel", paper.INFRONTREL, paper.AHEADREL, body
            )

    def test_identity_branch_incompatible_base_rejected(self):
        from repro.types import INTEGER, record, relation_type

        numrec = record("numrec", x=INTEGER, y=INTEGER)
        numrel = relation_type("numrel", numrec)
        db = Database()
        body = d.query(d.branch(d.each("r", "Rel")))
        with pytest.raises(SchemaError, match="positionally"):
            define_constructor(db, "bad", "Rel", numrel, paper.AHEADREL, body)

    def test_identity_branch_with_two_bindings_rejected(self):
        db = Database()
        body = d.query(d.branch(d.each("r", "Rel"), d.each("s", "Rel")))
        with pytest.raises(SchemaError, match="exactly one"):
            define_constructor(
                db, "bad", "Rel", paper.INFRONTREL, paper.AHEADREL, body
            )

    def test_positivity_enforced_at_definition(self):
        db = Database()
        with pytest.raises(PositivityError):
            paper.define_nonsense(db, check_positivity=True)

    def test_duplicate_name_rejected(self, db):
        body = d.query(d.branch(d.each("r", "Rel")))
        with pytest.raises(SchemaError, match="already"):
            define_constructor(
                db, "ahead", "Rel", paper.INFRONTREL, paper.AHEADREL, body
            )
