"""Unit and property tests for the set-oriented algebra primitives.

The algebraic laws tested here are the foundation the paper's
"set-construction framework" (section 4) builds on; hypothesis generates
arbitrary small binary relations over a small domain.
"""

from hypothesis import given
from hypothesis import strategies as st

from repro.relational import algebra

# -- concrete cases --------------------------------------------------------

E1 = {("a", "b"), ("b", "c"), ("c", "d")}
E2 = {("b", "c"), ("x", "y")}


class TestSelectProject:
    def test_select(self):
        assert algebra.select(E1, lambda r: r[0] == "b") == {("b", "c")}

    def test_select_empty(self):
        assert algebra.select(E1, lambda r: False) == set()

    def test_project_eliminates_duplicates(self):
        rows = {("a", "x"), ("a", "y")}
        assert algebra.project(rows, (0,)) == {("a",)}

    def test_project_reorder(self):
        assert algebra.project({("a", "b")}, (1, 0)) == {("b", "a")}


class TestJoins:
    def test_equijoin_concatenates(self):
        out = algebra.equijoin(E1, E1, ((1, 0),))
        assert ("a", "b", "b", "c") in out
        assert ("b", "c", "c", "d") in out
        assert len(out) == 2

    def test_equijoin_no_pairs_is_cartesian(self):
        out = algebra.equijoin({("a",)}, {("x",), ("y",)}, ())
        assert out == {("a", "x"), ("a", "y")}

    def test_semijoin(self):
        assert algebra.semijoin(E1, E2, ((0, 0),)) == {("b", "c")}

    def test_antijoin(self):
        assert algebra.antijoin(E1, E2, ((0, 0),)) == {("a", "b"), ("c", "d")}

    def test_semijoin_antijoin_partition(self):
        semi = algebra.semijoin(E1, E2, ((1, 0),))
        anti = algebra.antijoin(E1, E2, ((1, 0),))
        assert semi | anti == E1
        assert semi & anti == set()


class TestSetOps:
    def test_union_many(self):
        assert algebra.union(E1, E2) == E1 | E2

    def test_difference(self):
        assert algebra.difference(E1, E2) == E1 - E2

    def test_intersection(self):
        assert algebra.intersection(E1, E2) == E1 & E2

    def test_inputs_not_mutated(self):
        left = set(E1)
        algebra.union(left, E2)
        algebra.difference(left, E2)
        algebra.equijoin(left, E2, ((1, 0),))
        assert left == E1


# -- property tests ---------------------------------------------------------

nodes = st.sampled_from(["a", "b", "c", "d", "e"])
edges = st.frozensets(st.tuples(nodes, nodes), max_size=12)


@given(edges, edges)
def test_union_commutative(r, s):
    assert algebra.union(r, s) == algebra.union(s, r)


@given(edges, edges, edges)
def test_union_associative(r, s, t):
    assert algebra.union(algebra.union(r, s), t) == algebra.union(r, algebra.union(s, t))


@given(edges)
def test_union_idempotent(r):
    assert algebra.union(r, r) == set(r)


@given(edges, edges)
def test_equijoin_matches_nested_loop(r, s):
    """Hash equi-join agrees with the naive nested-loop definition."""
    fast = algebra.equijoin(r, s, ((1, 0),))
    slow = {lr + rr for lr in r for rr in s if lr[1] == rr[0]}
    assert fast == slow


@given(edges, edges)
def test_semijoin_is_projection_of_join(r, s):
    semi = algebra.semijoin(r, s, ((1, 0),))
    via_join = {t[:2] for t in algebra.equijoin(r, s, ((1, 0),))}
    assert semi == via_join


@given(edges, edges)
def test_antijoin_complements_semijoin(r, s):
    semi = algebra.semijoin(r, s, ((0, 1),))
    anti = algebra.antijoin(r, s, ((0, 1),))
    assert semi | anti == set(r)
    assert not (semi & anti)


@given(edges, edges)
def test_select_distributes_over_union(r, s):
    pred = lambda t: t[0] != "a"
    assert algebra.select(algebra.union(r, s), pred) == algebra.union(
        algebra.select(r, pred), algebra.select(s, pred)
    )


@given(edges)
def test_projection_monotone(r):
    sub = {t for t in r if t[0] < "c"}
    assert algebra.project(sub, (0,)) <= algebra.project(r, (0,))
