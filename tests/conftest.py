"""Shared fixtures: the paper's CAD schema and scene, plus a generic graph.

The actual schema constants and builders live in :mod:`helpers` so test
modules can import them directly (``from helpers import ...``) without
relying on the test tree being a package.
"""

import pytest

from helpers import make_cad_db, make_edge_db
from repro.relational import Database


@pytest.fixture
def cad_db() -> Database:
    return make_cad_db()


@pytest.fixture
def edge_db() -> Database:
    return make_edge_db([("a", "b"), ("b", "c"), ("c", "d"), ("b", "d")])
