"""Standing queries: Session.subscribe and incremental view maintenance.

The invariant under test everywhere: ``sub.rows()`` equals a fresh
``query()`` of the same source after every mutation batch — counting
maintenance for set formers, fixpoint resumption for constructed
ranges, full recomputation where neither applies.
"""

import random

import pytest
from helpers import (
    assert_subscription_tracks,
    clone_database,
    random_prop_database,
    random_prop_mutations,
    random_prop_query,
    transitive_closure,
)

from repro import ExecOptions
from repro.dbpl import Session
from repro.dbpl.subscriptions import SubscriptionRegistry
from repro.errors import PositivityError, SchemaError

SCHEMA = """
TYPE erec = RECORD name, dept: STRING; sal: INTEGER END;
     erel = RELATION name OF erec;
     prec = RECORD parent, child: STRING END;
     prel = RELATION parent, child OF prec;
     arec = RECORD anc, desc: STRING END;
     arel = RELATION anc, desc OF arec;
VAR Emp: erel; Par: prel; Block: prel;
CONSTRUCTOR tc FOR Rel: prel (): arel;
BEGIN EACH p IN Rel: TRUE,
      <p.parent, a.desc> OF EACH p IN Rel,
           EACH a IN Rel{tc()}: p.child = a.anc
END tc;
CONSTRUCTOR quant FOR Rel: prel (): prel;
BEGIN EACH p IN Rel: TRUE,
      <p.parent, p.child> OF EACH p IN Rel:
           SOME q IN Rel{quant()} (q.parent = p.child)
END quant;
"""

EMPS = [("a", "x", 10), ("b", "x", 20), ("c", "y", 30)]
PARS = [("a", "b"), ("b", "c")]

FILTER = "{EACH e IN Emp: e.sal > 15}"
JOIN = "{<e.name, p.child> OF EACH e IN Emp, EACH p IN Par: e.name = p.parent}"
SELF_JOIN = (
    "{<p.parent, q.child> OF EACH p IN Par, EACH q IN Par: p.child = q.parent}"
)
TC = "Par{tc()}"


def make_session() -> Session:
    s = Session()
    s.execute(SCHEMA)
    s.insert("Emp", EMPS)
    s.insert("Par", PARS)
    return s


def assert_tracks(session: Session, sub, source: str) -> None:
    assert sub.rows() == session.query(source), source


class TestCountingMaintenance:
    def test_filter_tracks_inserts_deletes_and_assign(self):
        s = make_session()
        sub = s.subscribe(FILTER)
        assert_tracks(s, sub, FILTER)
        s.insert("Emp", [("d", "y", 40), ("e", "z", 5)])
        assert_tracks(s, sub, FILTER)
        s.db.relation("Emp").delete([("c", "y", 30)])
        assert_tracks(s, sub, FILTER)
        s.assign("Emp", [("a", "x", 50), ("b", "x", 1)])
        assert_tracks(s, sub, FILTER)
        assert sub.delta_batches == 3
        assert sub.recomputes == 0

    def test_join_tracks_both_sides(self):
        s = make_session()
        sub = s.subscribe(JOIN)
        s.insert("Par", [("a", "c"), ("q", "r")])
        assert_tracks(s, sub, JOIN)
        s.insert("Emp", [("q", "w", 7)])
        assert_tracks(s, sub, JOIN)
        s.db.relation("Par").delete([("a", "b")])
        assert_tracks(s, sub, JOIN)

    def test_self_join_counts_derivations(self):
        # (a,c) via a->b->c survives deleting one of two supporting
        # paths only when its derivation count is tracked, not a flag.
        s = make_session()
        s.insert("Par", [("a", "d"), ("d", "c")])
        sub = s.subscribe(SELF_JOIN)
        assert ("a", "c") in sub.rows()
        s.db.relation("Par").delete([("a", "b")])
        assert_tracks(s, sub, SELF_JOIN)
        assert ("a", "c") in sub.rows()  # still derivable via a->d->c
        s.db.relation("Par").delete([("d", "c")])
        assert_tracks(s, sub, SELF_JOIN)
        assert ("a", "c") not in sub.rows()

    def test_union_branches_share_counts(self):
        source = (
            "{<p.parent> OF EACH p IN Par: TRUE,"
            " <b.parent> OF EACH b IN Block: TRUE}"
        )
        s = make_session()
        s.insert("Block", [("a", "z")])
        sub = s.subscribe(source)
        assert_tracks(s, sub, source)
        # ("a",) is derived by both arms; deleting one keeps the row.
        s.db.relation("Par").delete([("a", "b")])
        assert_tracks(s, sub, source)
        assert ("a",) in sub.rows()
        s.db.relation("Block").delete([("a", "z")])
        assert_tracks(s, sub, source)
        assert ("a",) not in sub.rows()

    def test_no_net_change_emits_no_event(self):
        s = make_session()
        events = []
        sub = s.subscribe(FILTER, on_change=events.append)
        s.insert("Emp", [("f", "z", 3)])  # below the filter threshold
        assert events == []
        assert sub.delta_batches == 1
        s.db.relation("Emp").delete([("nobody", "x", 1)])  # absent row
        assert events == []
        assert sub.delta_batches == 1  # no-op mutations never reach the sink

    def test_events_replay_to_current_rows(self):
        s = make_session()
        sub = s.subscribe(JOIN)
        state = set(sub.rows())
        s.insert("Par", [("a", "c")])
        s.assign("Emp", [("a", "x", 50), ("q", "w", 7)])
        s.db.relation("Par").delete([("b", "c")])
        for event in sub.changes():
            assert event.deleted <= state
            assert not (event.inserted & state)
            state = (state - event.deleted) | event.inserted
        assert state == sub.rows()

    def test_changes_drains_once(self):
        s = make_session()
        sub = s.subscribe(FILTER)
        s.insert("Emp", [("d", "y", 40)])
        assert len(list(sub.changes())) == 1
        assert list(sub.changes()) == []
        s.insert("Emp", [("f", "q", 99)])
        assert len(list(sub.changes())) == 1

    def test_close_stops_maintenance(self):
        s = make_session()
        sub = s.subscribe(FILTER)
        sub.close()
        assert not sub.active
        before = sub.rows()
        s.insert("Emp", [("d", "y", 40)])
        assert sub.rows() == before
        registry = s.db.subscriptions
        assert sub not in registry.subscriptions

    def test_relation_in_predicate_recomputes_exactly(self):
        # Block appears inside a (negated) membership predicate, not as
        # a binding range — its batches cannot be differentiated, so
        # they trigger full recomputation; answers stay exact.
        source = "{EACH p IN Par: NOT (p IN Block)}"
        s = make_session()
        sub = s.subscribe(source)
        assert_tracks(s, sub, source)
        s.insert("Block", [("a", "b")])
        assert_tracks(s, sub, source)
        assert sub.recomputes == 1
        s.insert("Par", [("x", "y")])  # Par is still delta-maintained
        assert_tracks(s, sub, source)
        assert sub.recomputes == 1
        assert sub.delta_batches == 1

    def test_large_batch_triggers_replan(self):
        s = make_session()
        sub = s.subscribe(JOIN)
        s.insert("Par", [("a", "b0")])  # prices the handler for tiny deltas
        big = [(f"n{i}", f"n{i + 1}") for i in range(64)]
        s.insert("Par", big)
        assert_tracks(s, sub, JOIN)
        assert sub.replans >= 1

    def test_bare_range_and_selected_range_subscribe(self):
        s = make_session()
        sub = s.subscribe("Par")
        s.insert("Par", [("x", "y")])
        assert_tracks(s, sub, "Par")
        s.execute(
            "SELECTOR under (P: STRING) FOR Rel: prel;\n"
            "BEGIN EACH r IN Rel: r.parent = P END under;"
        )
        selected = 'Par[under("a")]'
        ssub = s.subscribe(selected)
        s.insert("Par", [("a", "q"), ("z", "q")])
        assert_tracks(s, ssub, selected)

    def test_multiple_subscriptions_one_commit(self):
        s = make_session()
        subs = [s.subscribe(FILTER), s.subscribe(JOIN), s.subscribe(SELF_JOIN)]
        s.insert("Par", [("c", "d")])
        s.assign("Emp", [("a", "x", 90)])
        for sub, source in zip(subs, (FILTER, JOIN, SELF_JOIN)):
            assert_tracks(s, sub, source)

    def test_snapshot_option_is_rejected(self):
        s = make_session()
        with pytest.raises(ValueError, match="snapshot"):
            s.subscribe(FILTER, options=ExecOptions(snapshot=s.snapshot()))

    def test_sessions_share_one_registry_per_database(self):
        s = make_session()
        sub = s.subscribe(FILTER)
        other = Session(db=s.db)
        other_sub = other.subscribe("{EACH p IN Par: TRUE}")
        assert s.db.subscriptions is other.db.subscriptions
        s.insert("Emp", [("d", "y", 40)])
        s.insert("Par", [("x", "y")])
        assert_tracks(s, sub, FILTER)
        assert other_sub.rows() == other.query("{EACH p IN Par: TRUE}")

    def test_attach_sink_rejects_second_registry(self):
        s = make_session()
        s.subscribe(FILTER)
        with pytest.raises(SchemaError, match="already has a subscription"):
            s.db.attach_sink(SubscriptionRegistry(s.db))


class TestFixpointSubscription:
    def test_insert_resumes_without_recompute(self):
        s = make_session()
        sub = s.subscribe(TC)
        assert_tracks(s, sub, TC)
        s.insert("Par", [("c", "d"), ("x", "a")])
        assert_tracks(s, sub, TC)
        s.insert("Par", [("d", "e")])
        assert_tracks(s, sub, TC)
        assert sub.recomputes == 0
        assert sub.delta_batches == 2

    def test_matches_independent_closure_oracle(self):
        s = make_session()
        sub = s.subscribe(TC)
        edges = list(PARS)
        for batch in ([("c", "d")], [("d", "a")], [("q", "r"), ("r", "q")]):
            s.insert("Par", batch)
            edges.extend(batch)
            assert sub.rows() == transitive_closure(edges)

    def test_delete_recomputes(self):
        s = make_session()
        sub = s.subscribe(TC)
        s.insert("Par", [("c", "d")])
        s.db.relation("Par").delete([("b", "c")])
        assert_tracks(s, sub, TC)
        assert sub.recomputes == 1
        assert ("a", "c") not in sub.rows()

    def test_unrelated_relation_is_not_watched(self):
        s = make_session()
        sub = s.subscribe(TC)
        assert sub.watched == ("Par",)
        s.insert("Emp", [("d", "y", 40)])
        assert sub.delta_batches == 0
        assert sub.recomputes == 0

    def test_on_change_sees_only_net_new_rows(self):
        s = make_session()
        events = []
        sub = s.subscribe(TC, on_change=events.append)
        s.insert("Par", [("c", "d")])
        (event,) = events
        assert event.deleted == frozenset()
        assert event.inserted == {("c", "d"), ("b", "d"), ("a", "d")}
        assert event.inserted <= sub.rows()

    def test_ineligible_fixpoint_raises_instead_of_degrading(self):
        s = make_session()
        with pytest.raises(PositivityError):
            s.subscribe("Par{quant()}")


class TestSubscriptionProperties:
    """The standing-query invariant over randomized queries/mutations."""

    @pytest.mark.parametrize("seed", range(20))
    def test_random_subscriptions_track_reference(self, seed):
        rng = random.Random(7_000 + seed)
        db = random_prop_database(rng)
        query = random_prop_query(rng)
        initial = clone_database(db)
        mutations = random_prop_mutations(rng, db)
        assert_subscription_tracks(
            lambda: clone_database(initial), query, mutations
        )
