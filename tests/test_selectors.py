"""Tests for selectors: Fig. 1, referential integrity, hidden_by."""

import pytest

from repro import paper
from repro.calculus import Evaluator, dsl as d
from repro.errors import ArityError, IntegrityError
from repro.selectors import selected

from helpers import SCENE_INFRONT, SCENE_OBJECTS, SCENE_ONTOP


@pytest.fixture
def db():
    return paper.cad_database(SCENE_OBJECTS, SCENE_INFRONT, SCENE_ONTOP)


class TestSelectedReading:
    def test_hidden_by_selects_matching_front(self, db):
        view = selected(db, "Infront", "hidden_by", "table")
        assert view.value() == {("table", "chair")}

    def test_hidden_by_no_match_is_empty(self, db):
        view = selected(db, "Infront", "hidden_by", "vase")
        assert view.value() == set()

    def test_refint_selects_everything_when_consistent(self, db):
        view = selected(db, "Infront", "refint")
        assert view.value() == db["Infront"].rows()

    def test_refint_filters_dangling(self, db):
        db["Infront"].insert([("ghost", "chair")])
        view = selected(db, "Infront", "refint")
        assert ("ghost", "chair") not in view.value()
        assert ("table", "chair") in view.value()

    def test_selected_range_in_query(self, db):
        """Rel[sel] used as a range inside a calculus query."""
        q = d.query(
            d.branch(
                d.each("r", d.selected("Infront", "hidden_by", d.const("table"))),
                targets=[d.a("r", "back")],
            )
        )
        assert Evaluator(db).eval_query(q) == {("chair",)}


class TestCheckedAssignment:
    """Fig. 1: Infront[refint] := rex expands to the checked conditional."""

    def test_assignment_accepts_consistent_value(self, db):
        view = selected(db, "Infront", "refint")
        view.assign([("chair", "table"), ("vase", "lamp")])
        assert db["Infront"].rows() == {("chair", "table"), ("vase", "lamp")}

    def test_assignment_rejects_dangling_reference(self, db):
        view = selected(db, "Infront", "refint")
        before = db["Infront"].rows()
        with pytest.raises(IntegrityError, match="ghost"):
            view.assign([("ghost", "chair")])
        # the paper's ELSE <exception> arm: the old value is kept
        assert db["Infront"].rows() == before

    def test_insert_through_selector(self, db):
        view = selected(db, "Infront", "refint")
        view.insert([("vase", "lamp")])
        assert ("vase", "lamp") in db["Infront"].rows()

    def test_insert_rejects_violation(self, db):
        view = selected(db, "Infront", "refint")
        with pytest.raises(IntegrityError):
            view.insert([("nobody", "chair")])

    def test_parameterized_assignment(self, db):
        view = selected(db, "Infront", "hidden_by", "table")
        view.assign([("table", "door")])
        assert db["Infront"].rows() == {("table", "door")}
        with pytest.raises(IntegrityError):
            view.assign([("chair", "door")])


class TestParameterDiscipline:
    def test_wrong_arity_raises(self, db):
        view = selected(db, "Infront", "hidden_by")  # missing Obj
        with pytest.raises(ArityError):
            view.value()

    def test_wrong_scalar_type_raises(self, db):
        from repro.errors import TypeMismatchError

        view = selected(db, "Infront", "hidden_by", 42)
        with pytest.raises(TypeMismatchError):
            view.value()

    def test_selector_repr_mentions_name(self, db):
        assert "hidden_by" in repr(db.selector("hidden_by"))


class TestSelectorComposition:
    def test_selector_then_constructor(self, db):
        """Infront[hidden_by("table")]{ahead2} — composition of section 3.1.

        Under the formal semantics the constructor closes over the
        *selected* base only; with the single selected edge
        (table, chair) the result is just that pair.
        """
        from repro.constructors import construct

        node = d.constructed(
            d.selected("Infront", "hidden_by", d.const("table")), "ahead2"
        )
        result = construct(db, node)
        assert result.rows == {("table", "chair")}

    def test_selector_over_larger_selected_set(self, db):
        db["Infront"].insert([("table", "lamp")])
        view = selected(db, "Infront", "hidden_by", "table")
        assert view.value() == {("table", "chair"), ("table", "lamp")}
