"""Cross-executor property suite: every backend, one oracle, 50+ seeds.

The unified safety net behind the :mod:`repro.compiler.executors`
registry: seeded random schemas, skewed data, joins, range
restrictions, quantifiers, memberships, and negation are drawn by the
generators in :mod:`helpers`, and every registered backend — columnar
``batch``, row-major ``rowbatch``, the ``tuple`` interpreter, and the
``sharded`` parallel backend (forced into multi-shard mode so the
partition/merge machinery actually runs on small inputs) — must return
byte-identical answers to the reference calculus evaluator, with sane
est/act accounting on every compiled plan.  Random recursive fixpoints
additionally cross-check the interpreted semi-naive engine and an
independent transitive-closure oracle.

This is the harness the pre-registry 50-seed suites
(``test_batched_executor.py``, ``test_columnar.py``) refactored onto;
their remaining files keep only the backend-specific shape and counter
tests.
"""

import random

import pytest

from helpers import (
    ALL_EXECUTORS,
    assert_executors_agree,
    assert_executors_agree_cold,
    assert_fixpoint_executors_agree,
    forced_shard_config,
    random_prop_database,
    random_prop_query,
    transitive_closure,
)
from repro import paper
from repro.calculus import dsl as d
from repro.compiler import ShardConfig


#: The suite's seed budget (the acceptance bar is >=50; with the
#: storage-backed leg the harness spans 110+ seeds overall).
QUERY_SEEDS = 60
FIXPOINT_SEEDS = 50
STORAGE_SEEDS = 50


@pytest.mark.parametrize("seed", range(QUERY_SEEDS))
def test_random_queries_agree_across_executors(seed):
    rng = random.Random(seed)
    db = random_prop_database(rng)
    for _ in range(2):  # two draws per seed: more shapes per database
        query = random_prop_query(rng)
        assert_executors_agree(db, query)


@pytest.mark.parametrize("seed", range(FIXPOINT_SEEDS))
def test_random_fixpoints_agree_across_executors(seed):
    rng = random.Random(1000 + seed)
    nodes = rng.randint(2, 12)
    count = rng.randint(0, min(30, nodes * nodes))
    edges = sorted(
        {
            (f"n{rng.randrange(nodes)}", f"n{rng.randrange(nodes)}")
            for _ in range(count)
        }
    )
    assert_fixpoint_executors_agree(
        lambda: paper.cad_database(infront=edges, mutual=False),
        d.constructed("Infront", "ahead"),
        oracle=transitive_closure(edges),
    )


@pytest.mark.parametrize("seed", range(STORAGE_SEEDS))
def test_random_queries_agree_on_storage_backed_relations(seed, tmp_path):
    """Spill → reopen → every backend still matches the oracle.

    Tiny partitions force multi-partition layouts even on the small
    generated relations, so min/max pruning, projection pushdown, and
    the sharded backend's partition-file shard units all engage.  The
    persisted statistics round-trip is asserted on the way through.
    """
    from repro.relational import open_database

    rng = random.Random(2000 + seed)
    db = random_prop_database(rng)
    path = str(tmp_path / "prop")
    db.spill(path, rows_per_partition=16)
    reopened = open_database(path)
    for name in ("P", "Q", "S"):
        assert reopened.relation(name).stats().row_count == len(
            db.relation(name)
        )
        assert reopened.relation(name).is_cold
    query = random_prop_query(rng)
    assert_executors_agree_cold(db, path, query)


def test_single_worker_config_degrades_to_batch():
    """workers=1 must run unsharded and still agree everywhere."""
    rng = random.Random(7)
    db = random_prop_database(rng)
    query = random_prop_query(rng)
    rows = assert_executors_agree(
        db, query, shard_config=ShardConfig(workers=1, min_rows=0)
    )
    assert rows == assert_executors_agree(db, query)


def test_process_pool_shards_agree():
    """The opt-in fork-based process pool returns identical answers."""
    rng = random.Random(11)
    db = random_prop_database(rng)
    config = ShardConfig(workers=3, min_rows=0, rows_per_shard=1, pool="process")
    for _ in range(3):
        query = random_prop_query(rng)
        assert_executors_agree(
            db, query, executors=("sharded",), shard_config=config
        )


def test_sharded_vector_inner_agrees():
    """``inner="vector"`` runs encoded pipelines inside each shard.

    The thread pool encodes per-shard row overrides on demand; the
    process pool ships partitioned encoded buffers to the persistent
    fork pool (or falls back to fork-time inheritance for unshippable
    branches) — both must match the reference evaluator.
    """
    rng = random.Random(19)
    db = random_prop_database(rng)
    for pool in ("thread", "process"):
        config = ShardConfig(
            workers=3, min_rows=0, rows_per_shard=1, inner="vector", pool=pool
        )
        for _ in range(3):
            query = random_prop_query(rng)
            assert_executors_agree(
                db, query, executors=("sharded",), shard_config=config
            )


def test_parameterized_queries_agree():
    """Parameters flow through every backend identically."""
    rng = random.Random(13)
    db = random_prop_database(rng)
    query = d.query(
        d.branch(
            d.each("x", "P"), d.each("y", "Q"),
            pred=d.and_(
                d.eq(d.a("x", "f"), d.a("y", "k")),
                d.ge(d.a("x", "n"), d.param("cut")),
            ),
            targets=[d.a("x", "k"), d.a("y", "f"), d.a("x", "n")],
        )
    )
    assert_executors_agree(db, query, params={"cut": 3})


def test_shard_config_module_default_used(monkeypatch):
    """With no per-context config the backend reads the module default."""
    from repro.compiler import sharded as sharded_mod

    rng = random.Random(17)
    db = random_prop_database(rng)
    query = random_prop_query(rng)
    monkeypatch.setattr(
        sharded_mod, "DEFAULT_CONFIG", forced_shard_config()
    )
    assert_executors_agree(db, query, shard_config=False)  # falsy → module default


def test_executor_list_matches_registry():
    from repro.compiler import EXECUTORS, get_backend

    assert set(ALL_EXECUTORS) == set(EXECUTORS)
    for name in EXECUTORS:
        assert get_backend(name).name == name
    with pytest.raises(ValueError, match="unknown executor"):
        get_backend("async")
