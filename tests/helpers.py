"""Shared test data and oracles, importable from every test module.

Kept out of ``conftest.py`` so test files can use plain ``from helpers
import ...`` imports: pytest's rootdir-based collection puts this
directory on ``sys.path``, whereas relative imports from ``conftest``
only work when the test tree is a package.
"""

from repro.relational import Database
from repro.types import STRING, record, relation_type

# -- the paper's CAD schema (sections 2.3 and 3.1) ---------------------------

PARTTYPE = STRING

OBJECTREC = record("objectrec", part=STRING, kind=STRING)
OBJECTREL = relation_type("objectrel", OBJECTREC, key=("part",))

INFRONTREC = record("infrontrec", front=STRING, back=STRING)
INFRONTREL = relation_type("infrontrel", INFRONTREC)

ONTOPREC = record("ontoprec", top=STRING, base=STRING)
ONTOPREL = relation_type("ontoprel", ONTOPREC)

AHEADREC = record("aheadrec", head=STRING, tail=STRING)
AHEADREL = relation_type("aheadrel", AHEADREC)

ABOVEREC = record("aboverec", high=STRING, low=STRING)
ABOVEREL = relation_type("aboverel", ABOVEREC)

#: The scene used throughout the tests.  The vase stands on the table,
#: the table is in front of the chair — the paper's motivating example
#: for mutual recursion ("a vase is ahead of a chair if the vase is on
#: top of a table which is in front of the chair").
SCENE_OBJECTS = [
    ("table", "furniture"),
    ("chair", "furniture"),
    ("door", "fixture"),
    ("rug", "textile"),
    ("vase", "decor"),
    ("lamp", "decor"),
    ("desk", "furniture"),
]
SCENE_INFRONT = [
    ("table", "chair"),
    ("chair", "door"),
    ("rug", "table"),
]
SCENE_ONTOP = [
    ("vase", "table"),
    ("lamp", "desk"),
]


def make_cad_db() -> Database:
    db = Database("cad")
    db.declare("Objects", OBJECTREL, SCENE_OBJECTS)
    db.declare("Infront", INFRONTREL, SCENE_INFRONT)
    db.declare("Ontop", ONTOPREL, SCENE_ONTOP)
    return db


# -- a generic directed graph -------------------------------------------------

EDGEREC = record("edgerec", src=STRING, dst=STRING)
EDGEREL = relation_type("edgerel", EDGEREC)


def make_edge_db(edges) -> Database:
    db = Database("graph")
    db.declare("E", EDGEREL, edges)
    return db


def transitive_closure(edges) -> set[tuple]:
    """Independent oracle used across the test suite."""
    closure = set(edges)
    while True:
        new = {(x, w) for (x, y) in closure for (z, w) in closure if y == z}
        if new <= closure:
            return closure
        closure |= new
