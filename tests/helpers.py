"""Shared test data, oracles, and the cross-executor property harness.

Kept out of ``conftest.py`` so test files can use plain ``from helpers
import ...`` imports: pytest's rootdir-based collection puts this
directory on ``sys.path``, whereas relative imports from ``conftest``
only work when the test tree is a package.

The **executor harness** (:func:`assert_executors_agree`,
:func:`assert_fixpoint_executors_agree`, and the seeded random
query/database generators) is the shared safety net of every executor
backend: one call runs a query or fixpoint under every registered
backend — columnar ``batch``, row-major ``rowbatch``, the ``tuple``
interpreter, and ``sharded`` parallel execution — plus the reference
calculus evaluator (and, for fixpoints, the interpreted semi-naive
engine), asserting byte-identical answers and sane est/act accounting.
``tests/test_executor_properties.py`` drives it over 50+ seeds; the
older per-backend suites reuse the same assertions.
"""

import random

from repro.calculus import Evaluator, dsl as d
from repro.relational import Database
from repro.types import INTEGER, STRING, record, relation_type

# -- the paper's CAD schema (sections 2.3 and 3.1) ---------------------------

PARTTYPE = STRING

OBJECTREC = record("objectrec", part=STRING, kind=STRING)
OBJECTREL = relation_type("objectrel", OBJECTREC, key=("part",))

INFRONTREC = record("infrontrec", front=STRING, back=STRING)
INFRONTREL = relation_type("infrontrel", INFRONTREC)

ONTOPREC = record("ontoprec", top=STRING, base=STRING)
ONTOPREL = relation_type("ontoprel", ONTOPREC)

AHEADREC = record("aheadrec", head=STRING, tail=STRING)
AHEADREL = relation_type("aheadrel", AHEADREC)

ABOVEREC = record("aboverec", high=STRING, low=STRING)
ABOVEREL = relation_type("aboverel", ABOVEREC)

#: The scene used throughout the tests.  The vase stands on the table,
#: the table is in front of the chair — the paper's motivating example
#: for mutual recursion ("a vase is ahead of a chair if the vase is on
#: top of a table which is in front of the chair").
SCENE_OBJECTS = [
    ("table", "furniture"),
    ("chair", "furniture"),
    ("door", "fixture"),
    ("rug", "textile"),
    ("vase", "decor"),
    ("lamp", "decor"),
    ("desk", "furniture"),
]
SCENE_INFRONT = [
    ("table", "chair"),
    ("chair", "door"),
    ("rug", "table"),
]
SCENE_ONTOP = [
    ("vase", "table"),
    ("lamp", "desk"),
]


def make_cad_db() -> Database:
    db = Database("cad")
    db.declare("Objects", OBJECTREL, SCENE_OBJECTS)
    db.declare("Infront", INFRONTREL, SCENE_INFRONT)
    db.declare("Ontop", ONTOPREL, SCENE_ONTOP)
    return db


# -- a generic directed graph -------------------------------------------------

EDGEREC = record("edgerec", src=STRING, dst=STRING)
EDGEREL = relation_type("edgerel", EDGEREC)


def make_edge_db(edges) -> Database:
    db = Database("graph")
    db.declare("E", EDGEREL, edges)
    return db


def transitive_closure(edges) -> set[tuple]:
    """Independent oracle used across the test suite."""
    closure = set(edges)
    while True:
        new = {(x, w) for (x, y) in closure for (z, w) in closure if y == z}
        if new <= closure:
            return closure
        closure |= new


# ---------------------------------------------------------------------------
# The cross-executor property harness
# ---------------------------------------------------------------------------

#: Every backend the harness cross-checks (the registry's full set).
ALL_EXECUTORS = ("batch", "vector", "rowbatch", "tuple", "sharded")

PROPREC = record("proprec", k=STRING, f=STRING, n=INTEGER)
PROP_RELATIONS = ("P", "Q", "S")


def forced_shard_config():
    """A ShardConfig that shards even tiny inputs across 3 workers.

    Correctness coverage must exercise the partition/merge machinery on
    the small randomized databases the generators produce — the
    production thresholds would run them unsharded.
    """
    from repro.compiler import ShardConfig

    return ShardConfig(workers=3, min_rows=0, rows_per_shard=1)


def random_prop_database(rng: random.Random) -> Database:
    """Three small relations over one shared, skewed key domain.

    Keys are drawn with quadratic skew (low ids are heavy) so hash
    joins see heavy buckets, grouped residual probes see repeated
    groups, and the sharded backend sees imbalanced partitions.
    """
    db = Database("prop")
    keyspace = rng.randint(2, 14)

    def skewed_key() -> str:
        return f"k{int(keyspace * rng.random() ** 2)}"

    for name in PROP_RELATIONS:
        count = rng.randint(0, 120)
        rows = {
            (skewed_key(), skewed_key(), rng.randrange(8)) for _ in range(count)
        }
        db.declare(name, relation_type(name.lower(), PROPREC), rows)
    return db


def random_prop_query(rng: random.Random):
    """A random query over :func:`random_prop_database`'s schema.

    Draws 1-3 bindings joined by equality chains, optional range and
    inequality restrictions, optional (possibly negated) existential
    and universal quantifiers, and optional (possibly negated)
    memberships — every predicate family the executors specialize.
    """
    join_attrs = ("k", "f")

    def one_branch():
        nvars = rng.randint(1, 3)
        variables = [f"v{i}" for i in range(nvars)]
        bindings = [
            d.each(v, rng.choice(PROP_RELATIONS)) for v in variables
        ]
        preds = []
        for i in range(1, nvars):
            preds.append(
                d.eq(
                    d.a(variables[rng.randrange(i)], rng.choice(join_attrs)),
                    d.a(variables[i], rng.choice(join_attrs)),
                )
            )
        if rng.random() < 0.5:  # histogram-priced range restriction
            op = rng.choice((d.lt, d.le, d.gt, d.ge, d.ne))
            preds.append(op(d.a(rng.choice(variables), "n"), rng.randrange(8)))
        if rng.random() < 0.6:  # quantifier (grouped-probe / fallback paths)
            rel_name = rng.choice(PROP_RELATIONS)
            outer = d.a(rng.choice(variables), rng.choice(join_attrs))
            body_attr = d.a("qs", rng.choice(join_attrs))
            if rng.random() < 0.5:
                quant = d.some("qs", rel_name, d.eq(body_attr, outer))
            else:
                quant = d.all_("qs", rel_name, d.ne(body_attr, outer))
            if rng.random() < 0.3:
                quant = d.not_(quant)
            preds.append(quant)
        if rng.random() < 0.4:  # membership / negation
            v = rng.choice(variables)
            member = d.in_(
                d.tup(d.a(v, "k"), d.a(v, "f"), d.a(v, "n")),
                rng.choice(PROP_RELATIONS),
            )
            if rng.random() < 0.5:
                member = d.not_(member)
            preds.append(member)
        if nvars == 1 and rng.random() < 0.3:
            targets = None  # identity branch
        else:
            targets = [
                d.a(rng.choice(variables), rng.choice(("k", "f", "n")))
                for _ in range(rng.randint(1, 3))
            ]
        pred = d.and_(*preds) if preds else d.TRUE
        return d.branch(*bindings, pred=pred, targets=targets)

    branches = [one_branch()]
    if rng.random() < 0.25:  # a second union arm exercises Dedup
        branches.append(one_branch())
    return d.query(*branches)


def assert_analyzer_clean(db: Database, query, params: dict | None = None) -> None:
    """The static analyzer must accept every program the harness runs.

    Generated queries exercise the same front door users do, so an
    error-level diagnostic on a valid program is an analyzer false
    positive — caught here across every seed the property suite draws.
    """
    from repro.analysis.checks import Scope, analyze_query
    from repro.types import BOOLEAN

    scope = Scope.from_db(db)
    for name, value in (params or {}).items():
        if hasattr(value, "rtype"):
            ptype = value.rtype
        elif isinstance(value, bool):
            ptype = BOOLEAN
        elif isinstance(value, int):
            ptype = INTEGER
        elif isinstance(value, str):
            ptype = STRING
        else:
            ptype = None
        scope.params[name] = ptype
    result = analyze_query(query, scope)
    errors = result.diagnostics.errors
    assert not errors, "analyzer rejected a valid program:\n" + "\n".join(
        diag.render() for diag in errors
    )


def assert_plan_accounting(plan, result_size: int) -> None:
    """est/act sanity of a just-executed plan.

    Estimates exist on every step, actual counters are consistent
    (non-negative, executions recorded), and the rendered explain text
    carries both numbers without crashing.
    """
    for branch in plan.branches:
        assert branch.executions >= 1
        assert len(branch.actual_rows) == len(branch.steps)
        assert all(count >= 0 for count in branch.actual_rows)
        assert branch.actual_emitted >= 0
        for step in branch.steps:
            assert step.est_cumulative is not None and step.est_cumulative >= 0
        assert branch.est_out is not None and branch.est_out >= 0
    text = plan.explain()
    assert "est=" in text and "act=" in text
    if plan.dedup.executions:
        assert plan.dedup.actual_rows == result_size


def _numpy_modes(executor: str) -> tuple:
    """The numpy-gate settings one backend runs under in the harness.

    The vector backend has two genuinely different kernel sets — the
    numpy fast path and the pure-stdlib ``array`` path — so every seed
    exercises both (forcing True still degrades cleanly when numpy is
    absent, so this is safe on the no-numpy CI leg).  Other backends
    never consult the gate and run once.
    """
    return (True, False) if executor == "vector" else (None,)


def assert_executors_agree(
    db: Database,
    query,
    params: dict | None = None,
    executors: tuple[str, ...] = ALL_EXECUTORS,
    shard_config=None,
) -> set:
    """Run ``query`` under every backend; assert identical answers.

    The reference calculus evaluator is the semantic oracle; each
    backend executes a freshly compiled plan (one per backend, so
    per-plan counters stay attributable), the sharded backend under a
    forced-sharding configuration, and the vector backend twice — with
    the numpy fast path forced on and off.  Returns the agreed rows.
    """
    from repro.compiler import ExecutionContext, compile_query
    from repro.relational import set_numpy_enabled

    assert_analyzer_clean(db, query, params)
    reference = Evaluator(db, params).eval_query(query)
    if shard_config is None:
        shard_config = forced_shard_config()
    try:
        for executor in executors:
            for numpy_mode in _numpy_modes(executor):
                set_numpy_enabled(numpy_mode)
                plan = compile_query(db, query, params=params)
                ctx = ExecutionContext(db, params=params)
                ctx.shard_config = shard_config
                rows = plan.execute(ctx, executor=executor)
                assert rows == reference, (
                    f"executor {executor!r} (numpy={numpy_mode}) diverged: "
                    f"{len(rows)} rows vs {len(reference)} reference rows"
                )
                assert_plan_accounting(plan, len(rows))
    finally:
        set_numpy_enabled(None)
    return reference


def assert_executors_agree_cold(
    db: Database,
    path: str,
    query,
    params: dict | None = None,
    executors: tuple[str, ...] = ALL_EXECUTORS,
    shard_config=None,
) -> set:
    """Storage-backed variant: every backend runs a freshly reopened
    on-disk database.

    A fresh :func:`repro.relational.open_database` per backend keeps
    every relation cold, so compiled scans hit the partition readers
    (projection/predicate pushdown, min/max pruning, partition shard
    units) instead of rows a previous backend already materialized.
    The in-memory ``db`` the data was spilled from is the oracle.
    """
    from repro.compiler import ExecutionContext, compile_query
    from repro.relational import open_database

    reference = Evaluator(db, params).eval_query(query)
    if shard_config is None:
        shard_config = forced_shard_config()
    for executor in executors:
        cold = open_database(path)
        plan = compile_query(cold, query, params=params)
        ctx = ExecutionContext(cold, params=params)
        ctx.shard_config = shard_config
        rows = plan.execute(ctx, executor=executor)
        assert rows == reference, (
            f"executor {executor!r} diverged on storage-backed relations: "
            f"{len(rows)} rows vs {len(reference)} reference rows"
        )
    return reference


def assert_fixpoint_executors_agree(
    db_factory,
    application,
    executors: tuple[str, ...] = ALL_EXECUTORS,
    shard_config=None,
    oracle: set | None = None,
) -> frozenset:
    """Cross-check a recursive construction across every backend.

    ``db_factory`` builds a fresh database per engine (plans and
    statistics must not leak between runs); the interpreted semi-naive
    engine is the baseline and ``oracle`` (e.g. a transitive-closure
    set) an optional independent witness.  Returns the agreed value.
    """
    from repro.compiler import ExecOptions, compile_fixpoint
    from repro.constructors import instantiate
    from repro.constructors.engines import seminaive_fixpoint
    from repro.relational import set_numpy_enabled

    if shard_config is None:
        shard_config = forced_shard_config()
    base_db = db_factory()
    assert_analyzer_clean(base_db, application)
    base_system = instantiate(base_db, application)
    expected = seminaive_fixpoint(base_db, base_system)[base_system.root]
    try:
        for executor in executors:
            for numpy_mode in _numpy_modes(executor):
                set_numpy_enabled(numpy_mode)
                db = db_factory()
                system = instantiate(db, application)
                program = compile_fixpoint(
                    db,
                    system,
                    options=ExecOptions(
                        executor=executor, shard_config=shard_config
                    ),
                )
                values = program.run()
                assert values[system.root] == expected, (
                    f"fixpoint executor {executor!r} (numpy={numpy_mode}) "
                    f"diverged: {len(values[system.root])} vs {len(expected)} rows"
                )
    finally:
        set_numpy_enabled(None)
    if oracle is not None:
        assert set(expected) == oracle
    return expected


# -- standing-query (subscription) harness -----------------------------------


def clone_database(db: Database) -> Database:
    """A fresh Database with the same declarations and rows.

    Plans, statistics, and subscription registries do not carry over —
    each harness leg must observe only its own maintenance."""
    fresh = Database(db.name)
    for name, rel in db.relations.items():
        fresh.declare(name, rel.rtype, rel.raw())
    return fresh


def random_prop_mutations(rng: random.Random, db: Database) -> list:
    """A replayable insert/delete/assign script over the prop schema.

    Generated against ``db`` (mutating it along the way) so delete and
    assign batches reference rows that genuinely exist when the script
    replays against a fresh clone.  Delete batches also include absent
    rows — removing nothing must be a maintenance no-op."""

    def row() -> tuple:
        return (
            f"k{int(10 * rng.random() ** 2)}",
            f"k{int(10 * rng.random() ** 2)}",
            rng.randrange(8),
        )

    ops = []
    for _ in range(rng.randint(2, 6)):
        name = rng.choice(PROP_RELATIONS)
        rel = db.relation(name)
        kind = rng.choice(("insert", "insert", "delete", "assign"))
        if kind == "insert":
            rows = [row() for _ in range(rng.randint(1, 6))]
        elif kind == "delete":
            rows = [r for r in sorted(rel.raw()) if rng.random() < 0.3]
            rows.append(row())
        else:
            rows = [r for r in sorted(rel.raw()) if rng.random() < 0.6]
            rows.extend(row() for _ in range(rng.randint(0, 4)))
        getattr(rel, kind)(rows)
        ops.append((kind, name, rows))
    return ops


def assert_subscription_tracks(
    db_factory,
    query,
    mutations,
    executors: tuple[str, ...] = ALL_EXECUTORS,
) -> None:
    """Subscribe under every backend and replay a mutation script.

    After every batch the maintained rows must equal the reference
    evaluator on the live database — the standing-query invariant
    ``sub.rows() == fresh query()`` — and at the end the emitted change
    events must replay from the initial result to the final one (each
    event inserting only absent rows and deleting only present ones).
    """
    from repro.compiler import ExecOptions
    from repro.dbpl.subscriptions import SubscriptionRegistry

    for executor in executors:
        db = db_factory()
        registry = SubscriptionRegistry.ensure(db)
        sub = registry.subscribe_query(
            query, "<harness>", ExecOptions(executor=executor), None
        )
        replayed = set(sub.rows())
        assert sub.rows() == Evaluator(db).eval_query(query)
        for kind, name, rows in mutations:
            getattr(db.relation(name), kind)(rows)
            reference = Evaluator(db).eval_query(query)
            assert sub.rows() == reference, (
                f"subscription under {executor!r} diverged after "
                f"{kind} on {name}: {len(sub.rows())} rows vs "
                f"{len(reference)} reference rows"
            )
        for event in sub.changes():
            assert event.deleted <= replayed
            assert not (event.inserted & replayed)
            replayed = (replayed - event.deleted) | event.inserted
        assert replayed == sub.rows()
        sub.close()
