"""Tests for bound-argument specialization and access paths (section 4)."""

import pytest

from repro import paper
from repro.calculus import dsl as d
from repro.compiler import (
    LogicalAccessPath,
    PhysicalAccessPath,
    SpecializedStats,
    bound_query,
    detect_linear_tc,
)
from repro.constructors import apply_constructor, instantiate
from repro.errors import EvaluationError

from helpers import SCENE_INFRONT, SCENE_OBJECTS, SCENE_ONTOP

CHAIN = [(f"n{i}", f"n{i+1}") for i in range(20)] + [("m0", "m1"), ("m1", "m2")]


@pytest.fixture
def db():
    return paper.cad_database(SCENE_OBJECTS, CHAIN, SCENE_ONTOP, mutual=False)


class TestDetection:
    def test_left_linear_ahead_detected(self, db):
        system = instantiate(db, d.constructed("Infront", "ahead"))
        shape = detect_linear_tc(db, system)
        assert shape is not None
        assert shape.linearity == "left"

    def test_right_linear_detected(self):
        from repro.constructors import define_constructor

        db = paper.cad_database(infront=CHAIN, mutual=False)
        body = d.query(
            d.branch(d.each("r", "Rel")),
            d.branch(
                d.each("a", d.constructed("Rel", "rahead")),
                d.each("b", "Rel"),
                pred=d.eq(d.a("a", "tail"), d.a("b", "front")),
                targets=[d.a("a", "head"), d.a("b", "back")],
            ),
        )
        define_constructor(db, "rahead", "Rel", paper.INFRONTREL, paper.AHEADREL, body)
        system = instantiate(db, d.constructed("Infront", "rahead"))
        shape = detect_linear_tc(db, system)
        assert shape is not None and shape.linearity == "right"

    def test_mutual_system_not_specialized(self):
        db = paper.cad_database(
            SCENE_OBJECTS, SCENE_INFRONT, SCENE_ONTOP, mutual=True
        )
        system = instantiate(db, d.constructed("Infront", "ahead", d.rel("Ontop")))
        assert detect_linear_tc(db, system) is None

    def test_nonrecursive_not_specialized(self, db):
        system = instantiate(db, d.constructed("Infront", "ahead2"))
        assert detect_linear_tc(db, system) is None


class TestBoundQuery:
    def test_head_bound_matches_filtered_closure(self, db):
        system = instantiate(db, d.constructed("Infront", "ahead"))
        shape = detect_linear_tc(db, system)
        full = apply_constructor(db, "Infront", "ahead").rows
        expected = {r for r in full if r[0] == "n5"}
        assert bound_query(db, shape, "head", "n5") == expected

    def test_tail_bound_matches_filtered_closure(self, db):
        system = instantiate(db, d.constructed("Infront", "ahead"))
        shape = detect_linear_tc(db, system)
        full = apply_constructor(db, "Infront", "ahead").rows
        expected = {r for r in full if r[1] == "n5"}
        assert bound_query(db, shape, "tail", "n5") == expected

    def test_unknown_constant_empty(self, db):
        system = instantiate(db, d.constructed("Infront", "ahead"))
        shape = detect_linear_tc(db, system)
        assert bound_query(db, shape, "head", "nowhere") == set()

    def test_goal_directed_touches_fewer_edges(self, db):
        """The traversal must not touch the disconnected m-chain."""
        system = instantiate(db, d.constructed("Infront", "ahead"))
        shape = detect_linear_tc(db, system)
        stats = SpecializedStats()
        bound_query(db, shape, "head", "n15", stats)
        # only the 5 edges n15->...->n20 are reachable
        assert stats.edges_touched <= 6

    def test_cyclic_base(self):
        db = paper.cad_database(infront=[("a", "b"), ("b", "a")], mutual=False)
        system = instantiate(db, d.constructed("Infront", "ahead"))
        shape = detect_linear_tc(db, system)
        assert bound_query(db, shape, "head", "a") == {("a", "b"), ("a", "a")}

    def test_bad_attr_raises(self, db):
        system = instantiate(db, d.constructed("Infront", "ahead"))
        shape = detect_linear_tc(db, system)
        with pytest.raises(ValueError):
            bound_query(db, shape, "middle", "n5")


class TestAccessPaths:
    def test_logical_path_specialized(self, db):
        path = LogicalAccessPath(db, d.constructed("Infront", "ahead"), "head")
        assert path.shape is not None
        full = apply_constructor(db, "Infront", "ahead").rows
        assert path.lookup("n3") == {r for r in full if r[0] == "n3"}
        assert path.stats.invocations == 1

    def test_logical_path_fallback_full_fixpoint(self):
        """Mutual recursion does not specialize: logical path recomputes."""
        db = paper.cad_database(
            SCENE_OBJECTS, SCENE_INFRONT, SCENE_ONTOP, mutual=True
        )
        node = d.constructed("Infront", "ahead", d.rel("Ontop"))
        path = LogicalAccessPath(db, node, "head")
        assert path.shape is None
        full = apply_constructor(db, "Infront", "ahead", "Ontop").rows
        assert path.lookup("rug") == {r for r in full if r[0] == "rug"}

    def test_physical_path_materializes_once(self, db):
        path = PhysicalAccessPath(db, d.constructed("Infront", "ahead"), "head")
        full = apply_constructor(db, "Infront", "ahead").rows
        for const in ("n1", "n2", "n3", "m0"):
            assert path.lookup(const) == {r for r in full if r[0] == const}
        assert path.stats.recomputations == 1
        assert path.stats.partition_lookups == 4

    def test_physical_path_staleness_detected(self, db):
        path = PhysicalAccessPath(db, d.constructed("Infront", "ahead"), "head")
        path.lookup("n1")
        db["Infront"].insert([("x", "y")])
        with pytest.raises(EvaluationError, match="stale"):
            path.lookup("n1")
        path.materialize()
        assert ("x", "y") in path.lookup("x")

    def test_lookup_missing_value_empty(self, db):
        path = PhysicalAccessPath(db, d.constructed("Infront", "ahead"), "head")
        assert path.lookup("nothing") == set()
