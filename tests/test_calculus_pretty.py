"""Rendering tests: ASTs print in the paper's concrete syntax."""

from repro.calculus import dsl as d, render


class TestTermRendering:
    def test_attr(self):
        assert render(d.a("r", "front")) == "r.front"

    def test_string_const(self):
        assert render(d.const("table")) == '"table"'

    def test_bool_const(self):
        assert render(d.const(True)) == "TRUE"

    def test_int_const(self):
        assert render(d.const(7)) == "7"

    def test_arith(self):
        assert render(d.plus(d.a("s", "number"), 1)) == "(s.number+1)"

    def test_tuple_cons(self):
        assert render(d.tup(d.a("f", "front"), d.a("b", "back"))) == "<f.front, b.back>"


class TestRangeRendering:
    def test_selected_with_args(self):
        rng = d.selected("Infront", "hidden_by", d.const("table"))
        assert render(rng) == 'Infront[hidden_by("table")]'

    def test_constructed_with_relation_arg(self):
        rng = d.constructed("Infront", "ahead", "Ontop")
        assert render(rng) == "Infront{ahead(Ontop)}"

    def test_chained_selector_constructor(self):
        """The paper's Infront[hidden_by("table")]{ahead} expression."""
        rng = d.constructed(d.selected("Infront", "hidden_by", d.const("table")), "ahead")
        assert render(rng) == 'Infront[hidden_by("table")]{ahead}'

    def test_no_args_no_parens(self):
        assert render(d.selected("Rel", "refint")) == "Rel[refint]"


class TestPredicateRendering:
    def test_comparison(self):
        assert render(d.eq(d.a("f", "back"), d.a("b", "front"))) == "f.back = b.front"

    def test_quantifier(self):
        p = d.some(("r1", "r2"), "Objects", d.eq(d.a("r1", "part"), d.a("r2", "part")))
        assert render(p) == "SOME r1, r2 IN Objects (r1.part = r2.part)"

    def test_not_membership(self):
        p = d.not_(d.in_(d.v("r"), d.constructed("Rel", "nonsense")))
        assert render(p) == "NOT (r IN Rel{nonsense})"

    def test_and_or_precedence_parens(self):
        p = d.and_(d.or_(d.eq(d.a("r", "a"), 1), d.eq(d.a("r", "a"), 2)), d.eq(d.a("r", "b"), 3))
        assert render(p) == "(r.a = 1 OR r.a = 2) AND r.b = 3"


class TestQueryRendering:
    def test_ahead_2_rendering(self):
        q = d.query(
            d.branch(d.each("r", "Infront")),
            d.branch(
                d.each("f", "Infront"), d.each("b", "Infront"),
                pred=d.eq(d.a("f", "back"), d.a("b", "front")),
                targets=[d.a("f", "front"), d.a("b", "back")],
            ),
        )
        assert render(q) == (
            "{EACH r IN Infront: TRUE,\n"
            " <f.front, b.back> OF EACH f IN Infront, EACH b IN Infront: "
            "f.back = b.front}"
        )

    def test_binding_rendering(self):
        assert render(d.each("r", "Infront")) == "EACH r IN Infront"
