"""Tests for the proof-oriented engines: SLD resolution and tabling."""

import pytest

from repro.datalog import parse_atom, parse_program
from repro.prolog import (
    DepthLimitExceeded,
    KnowledgeBase,
    SLDEngine,
    TabledEngine,
    unify_atoms,
    unify_terms,
)
from repro.datalog.ast import Const, Var, mkatom

TC_SOURCE = """
ahead(X, Y) :- infront(X, Y).
ahead(X, Y) :- infront(X, Z), ahead(Z, Y).
"""

CHAIN = [("a", "b"), ("b", "c"), ("c", "d")]
CHAIN_TC = {("a", "b"), ("b", "c"), ("c", "d"), ("a", "c"), ("b", "d"), ("a", "d")}


def make_kb(edges=CHAIN) -> KnowledgeBase:
    return KnowledgeBase.from_program(parse_program(TC_SOURCE), {"infront": edges})


class TestUnification:
    def test_var_binds_const(self):
        subst = unify_terms(Var("X"), Const("a"), {})
        assert subst == {"X": Const("a")}

    def test_const_mismatch(self):
        assert unify_terms(Const("a"), Const("b"), {}) is None

    def test_var_var_aliasing(self):
        subst = unify_terms(Var("X"), Var("Y"), {})
        subst = unify_terms(Var("X"), Const("a"), subst)
        from repro.prolog import walk

        assert walk(Var("Y"), subst) == Const("a")

    def test_atom_unification(self):
        a = mkatom("p", "X", "b")
        b = mkatom("p", "a", "Y")
        subst = unify_atoms(a, b, {})
        assert subst is not None
        assert subst["X"] == Const("a")

    def test_atom_pred_mismatch(self):
        assert unify_atoms(mkatom("p", "X"), mkatom("q", "X"), {}) is None

    def test_input_subst_not_mutated(self):
        base: dict = {}
        unify_terms(Var("X"), Const("a"), base)
        assert base == {}


class TestSLD:
    def test_all_answers_tc(self):
        engine = SLDEngine(make_kb())
        assert engine.all_answers(parse_atom("ahead(X, Y)")) == CHAIN_TC

    def test_point_query(self):
        engine = SLDEngine(make_kb())
        assert engine.all_answers(parse_atom("ahead(b, Y)")) == {("b", "c"), ("b", "d")}

    def test_ground_query_prove(self):
        engine = SLDEngine(make_kb())
        assert engine.prove(parse_atom("ahead(a, d)"))
        assert not engine.prove(parse_atom("ahead(d, a)"))

    def test_cyclic_data_exceeds_depth(self):
        """The paper's termination point: SLD loops on cyclic data."""
        engine = SLDEngine(make_kb([("a", "b"), ("b", "a")]), max_depth=50)
        with pytest.raises(DepthLimitExceeded):
            engine.all_answers(parse_atom("ahead(X, Y)"))

    def test_stats_count_proof_effort(self):
        engine = SLDEngine(make_kb())
        engine.all_answers(parse_atom("ahead(X, Y)"))
        assert engine.stats.resolution_steps > 0
        assert engine.stats.answers == len(CHAIN_TC)

    def test_duplicate_proofs_single_answer(self):
        # diamond: two proofs of (a, d)
        edges = [("a", "b"), ("a", "c"), ("b", "d"), ("c", "d")]
        engine = SLDEngine(make_kb(edges))
        answers = engine.all_answers(parse_atom("ahead(a, d)"))
        assert answers == {("a", "d")}

    def test_comparison_goals(self):
        src = "pick(X) :- val(X, V), V > 2."
        kb = KnowledgeBase.from_program(
            parse_program(src), {"val": [("a", 1), ("b", 3)]}
        )
        engine = SLDEngine(kb)
        assert engine.all_answers(parse_atom("pick(X)")) == {("b",)}

    def test_redundant_recomputation_grows_with_depth(self):
        """Tuple-at-a-time proof search re-derives subgoals: resolution
        steps grow super-linearly on all-pairs queries over longer chains."""
        short = SLDEngine(make_kb([(f"n{i}", f"n{i+1}") for i in range(8)]))
        long = SLDEngine(make_kb([(f"n{i}", f"n{i+1}") for i in range(16)]))
        short.all_answers(parse_atom("ahead(X, Y)"))
        long.all_answers(parse_atom("ahead(X, Y)"))
        assert long.stats.resolution_steps > 3 * short.stats.resolution_steps


class TestTabled:
    def test_all_answers_tc(self):
        engine = TabledEngine(make_kb())
        assert engine.all_answers(parse_atom("ahead(X, Y)")) == CHAIN_TC

    def test_point_query(self):
        engine = TabledEngine(make_kb())
        assert engine.all_answers(parse_atom("ahead(a, Y)")) == {
            ("a", "b"), ("a", "c"), ("a", "d"),
        }

    def test_cyclic_data_terminates(self):
        """Tabling eliminates the endless loop SLD falls into."""
        engine = TabledEngine(make_kb([("a", "b"), ("b", "a")]))
        answers = engine.all_answers(parse_atom("ahead(X, Y)"))
        assert answers == {("a", "b"), ("b", "a"), ("a", "a"), ("b", "b")}

    def test_repeated_goal_variable(self):
        engine = TabledEngine(make_kb([("a", "b"), ("b", "a")]))
        assert engine.all_answers(parse_atom("ahead(X, X)")) == {("a", "a"), ("b", "b")}

    def test_point_query_expands_fewer_subgoals_than_full(self):
        edges = [(f"n{i}", f"n{i+1}") for i in range(12)] + [("m0", "m1")]
        full = TabledEngine(make_kb(edges))
        full.all_answers(parse_atom("ahead(X, Y)"))
        point = TabledEngine(make_kb(edges))
        point.all_answers(parse_atom("ahead(n9, Y)"))
        assert point.stats.resolution_steps < full.stats.resolution_steps

    def test_mutual_recursion(self):
        src = """
        even(X) :- zero(X).
        even(X) :- succ(Y, X), odd(Y).
        odd(X) :- succ(Y, X), even(Y).
        """
        kb = KnowledgeBase.from_program(
            parse_program(src),
            {"zero": [(0,)], "succ": [(i, i + 1) for i in range(6)]},
        )
        engine = TabledEngine(kb)
        assert engine.all_answers(parse_atom("even(X)")) == {(0,), (2,), (4,), (6,)}

    def test_agrees_with_sld_on_acyclic(self):
        edges = [("a", "b"), ("a", "c"), ("b", "d"), ("c", "d"), ("d", "e")]
        goal = parse_atom("ahead(X, Y)")
        assert TabledEngine(make_kb(edges)).all_answers(goal) == SLDEngine(
            make_kb(edges)
        ).all_answers(goal)


class TestKnowledgeBase:
    def test_from_database(self):
        from repro import paper

        db = paper.cad_database(infront=CHAIN, mutual=False)
        kb = KnowledgeBase.from_database(db, parse_program(TC_SOURCE))
        engine = SLDEngine(kb)
        assert engine.all_answers(parse_atom("ahead(X, Y)")) == CHAIN_TC

    def test_duplicate_facts_deduplicated(self):
        kb = KnowledgeBase()
        kb.add_fact("p", ("a",))
        kb.add_fact("p", ("a",))
        assert kb.facts["p"] == [("a",)]

    def test_clause_order_preserved(self):
        program = parse_program("p(X) :- a(X).\np(X) :- b(X).")
        kb = KnowledgeBase.from_program(program)
        rules = kb.rules["p"]
        assert [r.body[0].pred for r in rules] == ["a", "b"]
