"""The sharded parallel backend: partitioning, registry, and explain().

Backend-specific structure tests on top of the cross-executor property
suite (``test_executor_properties.py``): version-cached shard views on
relations, the executor registry's extension point, shard-count
policy, per-shard/merged explain accounting (the dedup regression),
and the fixpoint driver's per-iteration delta partitioning.
"""

import random
from dataclasses import replace

import pytest

from helpers import forced_shard_config, transitive_closure
from repro import paper
from repro.calculus import Evaluator, dsl as d
from repro.compiler import (
    ExecutionContext,
    ExecutorBackend,
    PlanStats,
    ShardConfig,
    compile_fixpoint,
    compile_query,
    get_backend,
    register_backend,
    shard_count,
)
from repro.constructors import instantiate
from repro.relational import Database, partition_rows, partition_views
from repro.types import INTEGER, STRING, record, relation_type

WREC = record("wrec", k=STRING, n=INTEGER)


def _db(rows):
    db = Database("sharddb")
    db.declare("R", relation_type("rrel", WREC), rows)
    db.declare("T", relation_type("trel", WREC), {(f"k{i % 7}", i) for i in range(40)})
    return db


class TestPartitions:
    def test_partition_rows_cover_and_align(self):
        rows = [(f"k{i % 5}", i) for i in range(50)]
        parts = partition_rows(rows, (0,), 4)
        assert sum(len(p) for p in parts) == 50
        # same key -> same partition
        home = {}
        for i, part in enumerate(parts):
            for row in part:
                assert home.setdefault(row[0], i) == i

    def test_partition_views_build_local_indexes(self):
        rows = [(f"k{i % 5}", i) for i in range(50)]
        views = partition_views(rows, (0,), 3)
        for view in views:
            index = view.index_on((0,))
            assert index is view.index_on((0,))  # cached per view
            assert sum(len(b) for b in index.buckets.values()) == len(view)

    def test_relation_partitions_version_cached(self):
        db = _db({(f"k{i % 5}", i) for i in range(50)})
        relation = db["R"]
        first = relation.partitions(("k",), 3)
        assert relation.partitions(("k",), 3) is first  # cached
        assert relation.partitions(("k",), 2) is not first  # per (key, k)
        relation.insert([("fresh", 999)])
        rebuilt = relation.partitions(("k",), 3)
        assert rebuilt is not first  # version bump invalidates
        assert sum(len(v) for v in rebuilt) == 51


class TestShardCountPolicy:
    def test_below_min_rows_runs_unsharded(self):
        config = ShardConfig(workers=8, min_rows=1000, rows_per_shard=10)
        assert shard_count(999, config) == 1
        assert shard_count(1000, config) > 1

    def test_clamped_to_workers_and_granularity(self):
        config = ShardConfig(workers=4, min_rows=0, rows_per_shard=100)
        assert shard_count(150, config) == 2  # ceil(150/100)
        assert shard_count(100_000, config) == 4  # clamped to workers
        assert shard_count(50, ShardConfig(workers=1, min_rows=0)) == 1


class TestRegistry:
    def test_custom_backend_pluggable(self):
        calls = []

        class Recording(ExecutorBackend):
            name = "batch"  # shadow, then restore

            def execute_branch(self, branch, ctx, out, dedup=None):
                calls.append(branch)
                branch.execute_tuple(ctx, out)

        original = get_backend("batch")
        try:
            register_backend(Recording())
            db = _db({(f"k{i % 3}", i) for i in range(9)})
            q = d.query(d.branch(d.each("x", "R"), targets=[d.a("x", "k")]))
            rows = compile_query(db, q).execute(ExecutionContext(db))
            assert calls and rows == Evaluator(db).eval_query(q)
        finally:
            register_backend(original)

    def test_sharded_backend_lazily_registered(self):
        backend = get_backend("sharded")
        assert backend.name == "sharded"


class TestExplainShardAccounting:
    def test_merged_counts_are_dedup_aware(self):
        """Regression: the SHARDS line must report the distinct merged
        count, not the sum of per-shard outputs — 30 rows that all
        project to one target tuple report produced=30, merged=1."""
        db = _db({("a", i) for i in range(30)})
        q = d.query(d.branch(d.each("x", "R"), targets=[d.a("x", "k")]))
        plan = compile_query(db, q)
        ctx = ExecutionContext(db)
        ctx.shard_config = forced_shard_config()
        rows = plan.execute(ctx, executor="sharded")
        assert rows == {("a",)}
        report = plan.branches[0].shards
        assert report is not None and report.executions == 1
        assert report.k == 3
        assert report.produced_total == 30  # every row emitted exactly once
        assert report.merged_total == 1  # dedup-aware: no double counting
        assert sum(report.produced) == 30
        assert plan.dedup.actual_rows == 1
        text = plan.explain()
        assert "SHARDS k=3" in text
        assert "merged=1.0" in text and "produced=30.0" in text

    def test_shard_actuals_match_unsharded_totals(self):
        rng = random.Random(3)
        rows = {(f"k{rng.randrange(6)}", i) for i in range(80)}
        db = _db(rows)
        q = d.query(
            d.branch(
                d.each("x", "R"), d.each("y", "T"),
                pred=d.eq(d.a("x", "k"), d.a("y", "k")),
                targets=[d.a("x", "n"), d.a("y", "n")],
            )
        )
        sharded_plan = compile_query(db, q)
        ctx = ExecutionContext(db, stats=PlanStats())
        ctx.shard_config = forced_shard_config()
        sharded_rows = sharded_plan.execute(ctx, executor="sharded")
        plain_plan = compile_query(db, q)
        plain_rows = plain_plan.execute(ExecutionContext(db), executor="batch")
        assert sharded_rows == plain_rows
        # Per-step actuals and emitted totals agree with the unsharded run.
        assert sharded_plan.branches[0].actual_rows == plain_plan.branches[0].actual_rows
        assert (
            sharded_plan.branches[0].actual_emitted
            == plain_plan.branches[0].actual_emitted
        )
        report = sharded_plan.branches[0].shards
        assert report.produced_total == sharded_plan.branches[0].actual_emitted
        assert report.merged_total == len(sharded_rows)

    def test_small_input_skips_shard_report(self):
        db = _db({("a", 1), ("b", 2)})
        q = d.query(d.branch(d.each("x", "R"), targets=[d.a("x", "k")]))
        plan = compile_query(db, q)
        ctx = ExecutionContext(db)
        ctx.shard_config = ShardConfig(workers=4, min_rows=1000)
        rows = plan.execute(ctx, executor="sharded")
        assert rows == {("a",), ("b",)}
        assert plan.branches[0].shards is None  # ran unsharded
        assert "SHARDS" not in plan.explain()


class TestShardedFixpoint:
    def test_delta_partitioned_per_iteration(self):
        """The sharded fixpoint: deltas are split per iteration, answers
        match the unsharded run, and the differential plans carry shard
        reports (multiple executions — one per iteration)."""
        rng = random.Random(5)
        edges = sorted(
            {(f"n{rng.randrange(20)}", f"n{rng.randrange(20)}") for _ in range(60)}
        )
        db = paper.cad_database(infront=edges, mutual=False)
        system = instantiate(db, d.constructed("Infront", "ahead"))
        program = compile_fixpoint(
            db, system, executor="sharded", shard_config=forced_shard_config()
        )
        values = program.run()
        assert set(values[system.root]) == transitive_closure(edges)
        (diff_plan,) = program.diff_plans.values()
        reports = [b.shards for b in diff_plan.branches if b.shards is not None]
        assert reports and any(r.executions >= 1 for r in reports)
        assert "SHARDS" in program.explain()

    def test_sharded_survives_midfixpoint_replan(self):
        from repro.bench.experiments import e15_drift_edges

        edges = e15_drift_edges(comps=3, sources=12, leaves=12)
        db = paper.cad_database(infront=edges, mutual=False)
        system = instantiate(db, d.constructed("Infront", "ahead"))
        program = compile_fixpoint(
            db, system, executor="sharded", shard_config=forced_shard_config()
        )
        values = program.run()
        db2 = paper.cad_database(infront=edges, mutual=False)
        system2 = instantiate(db2, d.constructed("Infront", "ahead"))
        baseline = compile_fixpoint(db2, system2, executor="batch").run()
        assert values[system.root] == baseline[system2.root]
        assert program.replans >= 1


class TestShippedVectorShards:
    """The persistent-pool ship path for ``inner="vector"`` (PR 8)."""

    CONFIG = ShardConfig(
        workers=3, min_rows=0, rows_per_shard=1, inner="vector", pool="process"
    )

    def _join_query(self):
        return d.query(
            d.branch(
                d.each("x", "R"), d.each("y", "T"),
                pred=d.eq(d.a("x", "k"), d.a("y", "k")),
                targets=[d.a("x", "n"), d.a("y", "n")],
            )
        )

    def _run(self, db, q, config):
        plan = compile_query(db, q)
        ctx = ExecutionContext(db)
        ctx.shard_config = config
        return plan, plan.execute(ctx, executor="sharded")

    def test_shipped_results_match_batch(self):
        rng = random.Random(29)
        rows = {(f"k{rng.randrange(5)}", i) for i in range(60)}
        db = _db(rows)
        q = self._join_query()
        plan, shipped = self._run(db, q, self.CONFIG)
        assert shipped == compile_query(db, q).execute(
            ExecutionContext(db), executor="batch"
        )
        report = plan.branches[0].shards
        assert report is not None and report.k == 3
        assert report.merged_total == len(shipped)

    def test_persistent_pool_reused_across_executions(self):
        """Repeated sharded vector executions must not pay pool setup:
        the fork pool is created once per worker count and reused."""
        from repro.compiler import sharded as sharded_mod

        db = _db({(f"k{i % 5}", i) for i in range(60)})
        q = self._join_query()
        self._run(db, q, self.CONFIG)
        pools = dict(sharded_mod._PROCESS_POOLS)
        assert pools, "shipped path never engaged a persistent pool"
        for _ in range(3):
            self._run(db, q, self.CONFIG)
        assert dict(sharded_mod._PROCESS_POOLS) == pools

    def test_reuse_pool_off_takes_legacy_path_and_agrees(self):
        db = _db({(f"k{i % 5}", i) for i in range(60)})
        q = self._join_query()
        config = replace(self.CONFIG, reuse_pool=False)
        _plan, rows = self._run(db, q, config)
        assert rows == compile_query(db, q).execute(
            ExecutionContext(db), executor="batch"
        )


class TestUnknownExecutor:
    def test_rejected_through_registry(self):
        db = _db({("a", 1)})
        q = d.query(d.branch(d.each("x", "R")))
        plan = compile_query(db, q)
        with pytest.raises(ValueError, match="unknown executor"):
            plan.execute(ExecutionContext(db), executor="distributed")
