"""Edge cases of the section 3.4 translators and instantiation machinery."""

import pytest

from repro import paper
from repro.calculus import ast, dsl as d
from repro.constructors import construct, define_constructor, instantiate
from repro.datalog import DatalogEngine, system_to_program
from repro.errors import ArityError, DBPLError, EvaluationError, TranslationError
from repro.relational import Database


def edge_db(edges):
    return paper.cad_database(infront=edges, mutual=False)


class TestInstantiationEdges:
    def test_unification_of_equal_applications(self):
        """Two textually separate but equal applications share one key."""
        db = edge_db([("a", "b")])
        n1 = d.constructed("Infront", "ahead")
        n2 = d.constructed(d.rel("Infront"), "ahead")
        s1 = instantiate(db, n1)
        s2 = instantiate(db, n2)
        assert s1.root == s2.root

    def test_selected_base_distinct_key(self):
        db = edge_db([("a", "b")])  # cad_database already defines hidden_by
        plain = instantiate(db, d.constructed("Infront", "ahead"))
        restricted = instantiate(
            db,
            d.constructed(d.selected("Infront", "hidden_by", d.const("a")), "ahead"),
        )
        assert plain.root != restricted.root

    def test_wrong_arity_raises(self):
        db = edge_db([("a", "b")])
        with pytest.raises(ArityError):
            instantiate(db, d.constructed("Infront", "ahead", d.rel("Infront")))

    def test_scalar_where_relation_expected(self):
        db = paper.cad_database(mutual=True)
        with pytest.raises(ArityError):
            instantiate(db, d.constructed("Infront", "ahead", d.const("oops")))

    def test_runaway_instantiation_guarded(self):
        """A constructor that grows its own argument expression forever."""
        db = Database()
        db.declare("E", paper.INFRONTREL, [("a", "b")])
        from repro.selectors.selector import Parameter

        body = d.query(
            d.branch(
                d.each(
                    "r",
                    d.constructed(
                        "Rel", "grower",
                        d.constructed("P", "grower", d.rel("Rel")),
                    ),
                )
            )
        )
        define_constructor(
            db, "grower", "Rel", paper.INFRONTREL, paper.INFRONTREL, body,
            params=(Parameter("P", paper.INFRONTREL),),
        )
        with pytest.raises(DBPLError, match="exceeded"):
            instantiate(db, d.constructed("E", "grower", d.rel("E")),
                        max_applications=32)

    def test_correlated_inline_query_rejected(self):
        db = edge_db([("a", "b")])
        correlated = ast.QueryRange(
            d.query(
                d.branch(d.each("x", "Infront"),
                         pred=d.eq(d.a("x", "front"), d.a("outer", "back")))
            )
        )
        with pytest.raises(EvaluationError, match="correlated"):
            instantiate(db, ast.Constructed(correlated, "ahead", ()))

    def test_key_describe_readable(self):
        db = edge_db([("a", "b")])
        system = instantiate(db, d.constructed("Infront", "ahead"))
        assert "Infront{ahead}" in system.root.describe()


class TestTranslatorEdges:
    def test_selected_range_not_translatable(self):
        db = edge_db([("a", "b")])  # hidden_by comes with cad_database
        node = d.constructed(
            d.selected("Infront", "hidden_by", d.const("a")), "ahead"
        )
        system = instantiate(db, node)
        with pytest.raises(TranslationError):
            system_to_program(db, system)

    def test_contradictory_equalities_prune_rule(self):
        """A branch requiring r.front = "a" AND r.front = "b" never fires;
        the translator drops it instead of emitting a broken rule."""
        db = Database()
        db.declare("E", paper.INFRONTREL, [("a", "b"), ("b", "c")])
        body = d.query(
            d.branch(d.each("r", "Rel")),
            d.branch(
                d.each("r", "Rel"),
                pred=d.and_(
                    d.eq(d.a("r", "front"), "a"),
                    d.eq(d.a("r", "front"), "b"),
                ),
                targets=[d.a("r", "front"), d.a("r", "back")],
            ),
        )
        define_constructor(db, "contra", "Rel", paper.INFRONTREL, paper.AHEADREL, body)
        system = instantiate(db, d.constructed("E", "contra"))
        program, edb, root = system_to_program(db, system)
        oracle = DatalogEngine(program, edb).solve()[root]
        assert oracle == construct(db, d.constructed("E", "contra")).rows

    def test_inequality_literals_survive_roundtrip(self):
        db = Database()
        db.declare("E", paper.INFRONTREL, [("a", "b"), ("b", "b")])
        body = d.query(
            d.branch(
                d.each("r", "Rel"),
                pred=d.ne(d.a("r", "front"), d.a("r", "back")),
                targets=[d.a("r", "front"), d.a("r", "back")],
            )
        )
        define_constructor(db, "strict", "Rel", paper.INFRONTREL, paper.AHEADREL, body)
        system = instantiate(db, d.constructed("E", "strict"))
        program, edb, root = system_to_program(db, system)
        assert DatalogEngine(program, edb).solve()[root] == {("a", "b")}

    def test_some_quantifier_becomes_body_atom(self):
        db = Database()
        db.declare("E", paper.INFRONTREL, [("a", "b"), ("b", "c")])
        body = d.query(
            d.branch(
                d.each("r", "Rel"),
                pred=d.some("s", "Rel", d.eq(d.a("r", "back"), d.a("s", "front"))),
                targets=[d.a("r", "front"), d.a("r", "back")],
            )
        )
        define_constructor(db, "haspath", "Rel", paper.INFRONTREL, paper.AHEADREL, body)
        system = instantiate(db, d.constructed("E", "haspath"))
        program, edb, root = system_to_program(db, system)
        oracle = DatalogEngine(program, edb).solve()[root]
        assert oracle == {("a", "b")}
        assert oracle == construct(db, d.constructed("E", "haspath")).rows
