"""Differential safety net for the cost-based planner.

The planner may pick any join order and access path it likes, but the
three fixpoint executions must stay extensionally identical:

    CompiledFixpoint.run  ≡  seminaive_fixpoint  ≡  naive_fixpoint

asserted here on ~50 seeded random edge databases (plus the mutual
recursion and non-linear same-generation shapes), against an independent
transitive-closure oracle where one exists.
"""

import random

import pytest

from helpers import transitive_closure
from repro import paper
from repro.calculus import dsl as d
from repro.compiler import compile_fixpoint
from repro.constructors import instantiate
from repro.constructors.engines import (
    naive_fixpoint,
    seminaive_fixpoint,
)
from repro.workloads import sg_database, generate_family


def _random_edges(rng: random.Random) -> list[tuple[str, str]]:
    nodes = rng.randint(2, 12)
    count = rng.randint(0, min(30, nodes * nodes))
    edges = set()
    for _ in range(count):
        a, b = rng.randrange(nodes), rng.randrange(nodes)
        edges.add((f"n{a}", f"n{b}"))
    return sorted(edges)


def _three_ways(db, application):
    system = instantiate(db, application)
    naive = naive_fixpoint(db, system)
    semi = seminaive_fixpoint(db, system)
    compiled = compile_fixpoint(db, system).run()
    return system, naive, semi, compiled


@pytest.mark.parametrize("seed", range(50))
def test_three_engines_agree_on_random_graphs(seed):
    rng = random.Random(seed)
    edges = _random_edges(rng)
    db = paper.cad_database(infront=edges, mutual=False)
    system, naive, semi, compiled = _three_ways(db, d.constructed("Infront", "ahead"))
    root = system.root
    assert naive[root] == semi[root] == compiled[root]
    assert set(naive[root]) == transitive_closure(edges)


@pytest.mark.parametrize("seed", [1, 7, 23])
def test_three_engines_agree_on_mutual_recursion(seed):
    rng = random.Random(seed)
    infront = _random_edges(rng)
    ontop = _random_edges(rng)[: max(1, len(infront) // 2)]
    db = paper.cad_database(infront=infront, ontop=ontop, mutual=True)
    node = d.constructed("Infront", "ahead", d.rel("Ontop"))
    system, naive, semi, compiled = _three_ways(db, node)
    for key in system.apps:
        assert naive[key] == semi[key] == compiled[key]


@pytest.mark.parametrize("seed", [2, 11])
def test_three_engines_agree_on_nonlinear_samegen(seed):
    family = generate_family(roots=2, depth=3, children=2, seed=seed)
    db = sg_database(family)
    node = d.constructed("Sibling", "samegen", d.rel("Parent"))
    system, naive, semi, compiled = _three_ways(db, node)
    root = system.root
    assert naive[root] == semi[root] == compiled[root]


def test_all_optimizer_modes_agree():
    """Join-order choice must never change fixpoint semantics."""
    edges = _random_edges(random.Random(99))
    db = paper.cad_database(infront=edges, mutual=False)
    system = instantiate(db, d.constructed("Infront", "ahead"))
    reference = naive_fixpoint(db, system)[system.root]
    for optimizer in ("syntactic", "greedy", "cost"):
        values = compile_fixpoint(db, system, optimizer=optimizer).run()
        assert values[system.root] == reference, optimizer
