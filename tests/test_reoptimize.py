"""Mid-fixpoint re-optimization and catalog observation scoping (PR 2).

The compiled semi-naive engine compares the delta cardinalities its
differential plans were priced with against the deltas actually
observed, and re-enumerates join orders with the live numbers once they
drift beyond ``replan_drift``.  These tests pin: the re-plan fires on a
delta-exploding workload, results stay identical to the interpreted
semi-naive engine, the ``replans`` counter is surfaced, and re-planning
reduces scanned rows.  Plus the satellite regression: a fixpoint
observation survives mutations of relations the application never reads.
"""


from helpers import INFRONTREL, OBJECTREL, SCENE_OBJECTS
from repro import paper
from repro.calculus import dsl as d
from repro.compiler import REPLAN_DRIFT, compile_fixpoint, construct_compiled
from repro.constructors import construct, instantiate
from repro.constructors.engines import FixpointStats, seminaive_fixpoint
from repro.workloads import random_digraph


def drifting_edges(comps=6, sources=50, leaves=50):
    """Staggered dead-end fans: component ``j`` is a source layer feeding
    a chain of length ``j`` that ends in a hub fanning out to leaves.
    Early TC deltas are tiny (chains advancing); then each component's
    source×leaf wave explodes — orders of magnitude beyond the initial
    delta estimate — and the waves keep coming, one component per
    iteration."""
    edges = []
    for j in range(comps):
        edges += [(f"s{j}_{i}", f"c{j}_0") for i in range(sources)]
        edges += [(f"c{j}_{k}", f"c{j}_{k+1}") for k in range(j + 1)]
        edges += [(f"c{j}_{j+1}", f"b{j}_{n}") for n in range(leaves)]
    return edges


def _tc_db(edges):
    return paper.cad_database(infront=edges, mutual=False)


class TestReplanFires:
    def test_replan_fires_on_exploding_deltas(self):
        db = _tc_db(drifting_edges())
        system = instantiate(db, d.constructed("Infront", "ahead"))
        program = compile_fixpoint(db, system)
        stats = FixpointStats()
        program.run(stats=stats)
        assert program.replans >= 1
        assert stats.replans == program.replans

    def test_results_equal_seminaive_engine(self):
        edges = drifting_edges(comps=4, sources=30, leaves=30)
        db = _tc_db(edges)
        system = instantiate(db, d.constructed("Infront", "ahead"))
        program = compile_fixpoint(db, system)
        compiled_values = program.run()
        assert program.replans >= 1

        reference_db = _tc_db(edges)
        reference_system = instantiate(
            reference_db, d.constructed("Infront", "ahead")
        )
        reference = seminaive_fixpoint(reference_db, reference_system)
        assert compiled_values[system.root] == reference[reference_system.root]

    def test_replan_disabled_still_correct(self):
        edges = drifting_edges(comps=4, sources=30, leaves=30)
        db = _tc_db(edges)
        system = instantiate(db, d.constructed("Infront", "ahead"))
        program = compile_fixpoint(db, system, replan_drift=None)
        values = program.run()
        assert program.replans == 0
        result = construct(_tc_db(edges), d.constructed("Infront", "ahead"))
        assert values[system.root] == result.rows

    def test_replan_reduces_scanned_rows(self):
        """The headline: adapting the differential join order to the
        observed deltas touches measurably fewer rows, same answers."""
        edges = drifting_edges()
        frozen = _tc_db(edges)
        frozen_system = instantiate(frozen, d.constructed("Infront", "ahead"))
        frozen_program = compile_fixpoint(frozen, frozen_system, replan_drift=None)
        frozen_values = frozen_program.run()

        adaptive = _tc_db(edges)
        adaptive_system = instantiate(adaptive, d.constructed("Infront", "ahead"))
        adaptive_program = compile_fixpoint(adaptive, adaptive_system)
        adaptive_values = adaptive_program.run()

        assert adaptive_values[adaptive_system.root] == frozen_values[frozen_system.root]
        assert adaptive_program.replans >= 1
        assert (
            adaptive_program.plan_stats.rows_scanned
            < frozen_program.plan_stats.rows_scanned
        )

    def test_replan_on_dense_digraph(self):
        """Dense random TC: deltas exceed the edge count mid-run."""
        edges = random_digraph(120, 480, seed=2)
        db = _tc_db(edges)
        system = instantiate(db, d.constructed("Infront", "ahead"))
        program = compile_fixpoint(db, system)
        values = program.run()
        assert program.replans >= 1
        result = construct(_tc_db(edges), d.constructed("Infront", "ahead"))
        assert values[system.root] == result.rows

    def test_legacy_optimizers_never_replan(self):
        db = _tc_db(drifting_edges(comps=3, sources=20, leaves=20))
        system = instantiate(db, d.constructed("Infront", "ahead"))
        program = compile_fixpoint(db, system, optimizer="syntactic")
        assert program.replan_drift is None
        program.run()
        assert program.replans == 0


class TestReplanSurfacing:
    def test_explain_reports_replans(self):
        db = _tc_db(drifting_edges(comps=3, sources=20, leaves=20))
        node = d.constructed("Infront", "ahead")
        system = instantiate(db, node)
        program = compile_fixpoint(db, system)
        program.run()
        text = program.explain()
        assert f"replans: {program.replans}" in text
        assert f"drift threshold {REPLAN_DRIFT:g}x" in text

    def test_explain_reports_disabled(self):
        db = _tc_db(drifting_edges(comps=3, sources=20, leaves=20))
        system = instantiate(db, d.constructed("Infront", "ahead"))
        program = compile_fixpoint(db, system, replan_drift=None)
        assert "re-planning disabled" in program.explain()

    def test_construct_compiled_threads_drift_knob(self):
        db = _tc_db(drifting_edges(comps=3, sources=20, leaves=20))
        node = d.constructed("Infront", "ahead")
        result = construct_compiled(db, node, replan_drift=1.0001)
        assert result.stats.replans >= 1
        baseline = construct_compiled(_tc_db(drifting_edges(comps=3, sources=20, leaves=20)), node, replan_drift=None)
        assert result.rows == baseline.rows


# ---------------------------------------------------------------------------
# Observation scoping (satellite regression)
# ---------------------------------------------------------------------------


class TestObservationScoping:
    def _db(self):
        db = paper.cad_database(mutual=False)
        # a relation the `ahead` application never reads
        db.declare("Bystander", INFRONTREL, [("x", "y")])
        return db

    def test_observation_survives_unrelated_mutation(self):
        db = self._db()
        node = d.constructed("Infront", "ahead")
        construct_compiled(db, node)
        system = instantiate(db, node)
        assert db.stats.constructed_estimate(system.root) is not None
        db["Bystander"].insert([("p", "q")])
        db["Objects"].insert([("new_thing", "decor")])
        assert db.stats.constructed_estimate(system.root) is not None

    def test_observation_dropped_on_read_mutation(self):
        db = self._db()
        node = d.constructed("Infront", "ahead")
        construct_compiled(db, node)
        system = instantiate(db, node)
        db["Infront"].insert([("door", "rug")])
        assert db.stats.constructed_estimate(system.root) is None

    def test_observation_survives_declaring_new_relation(self):
        db = self._db()
        node = d.constructed("Infront", "ahead")
        construct_compiled(db, node)
        system = instantiate(db, node)
        db.declare("Latecomer", OBJECTREL, SCENE_OBJECTS)
        assert db.stats.constructed_estimate(system.root) is not None

    def test_interpreted_engines_scope_observations_too(self):
        db = self._db()
        node = d.constructed("Infront", "ahead")
        construct(db, node)  # records via the interpreted engine hook
        system = instantiate(db, node)
        assert db.stats.constructed_estimate(system.root) is not None
        db["Bystander"].insert([("m", "n")])
        assert db.stats.constructed_estimate(system.root) is not None

    def test_observation_carries_value_statistics(self):
        db = self._db()
        node = d.constructed("Infront", "ahead")
        result = construct_compiled(db, node)
        system = instantiate(db, node)
        observation = db.stats.fixpoint_observation(system.root)
        assert observation is not None and observation.table is not None
        assert observation.table.row_count == len(result.rows)
