"""The cost-based planner: statistics, estimates, orders, explain().

Covers the stats layer (incremental cardinality/distinct maintenance,
selectivity estimates), the CostModel (join-order choice on skewed data,
cost-gated access paths, estimation quality), the pushdown gate, and an
explain() regression pinning the chosen plan for one BOM query.
"""

import random

import pytest

from helpers import INFRONTREL, make_cad_db
from repro.calculus import dsl as d
from repro.compiler import (
    CostModel,
    ExecutionContext,
    PlanStats,
    choose_access_path,
    compile_fixpoint,
    compile_query,
    cost_gated_inline,
    construct_compiled,
    estimate_branch,
    run_query,
)
from repro.compiler.accesspath import LogicalAccessPath, PhysicalAccessPath
from repro.constructors import instantiate
from repro.relational import Database, DeltaStats, TableStats
from repro.types import STRING, record, relation_type
from repro.workloads import bom_database, chain, generate_bom


# ---------------------------------------------------------------------------
# Statistics layer
# ---------------------------------------------------------------------------


class TestTableStats:
    def test_from_rows_counts(self):
        stats = TableStats.from_rows([("a", "x"), ("b", "x"), ("c", "y")], 2)
        assert stats.row_count == 3
        assert stats.distinct(0) == 3
        assert stats.distinct(1) == 2
        # uniform column: blend equals 1/distinct exactly
        assert stats.eq_selectivity(0) == pytest.approx(1 / 3)
        # skewed column: blend of 1/distinct (0.5) and mcf (2/3)
        assert stats.eq_selectivity(1) == pytest.approx((0.5 + 2 / 3) / 2)

    def test_eq_selectivity_uniform_unchanged_by_blend(self):
        stats = TableStats.from_rows([(i,) for i in range(8)], 1)
        assert stats.eq_selectivity(0) == pytest.approx(1 / 8)

    def test_incremental_add_and_remove(self):
        stats = TableStats.from_rows([("a", "x"), ("b", "x")], 2)
        stats.add_rows([("c", "y")])
        assert stats.row_count == 3 and stats.distinct(1) == 2
        stats.remove_rows([("a", "x")])
        assert stats.row_count == 2
        assert stats.distinct(0) == 2  # "a" disappeared entirely
        assert stats.distinct(1) == 2  # one "x" remains

    def test_key_selectivity_floor(self):
        # 4 rows, both columns distinct: product would be 1/16, floored 1/4
        rows = [(i, i) for i in range(4)]
        stats = TableStats.from_rows(rows, 2)
        assert stats.key_selectivity((0, 1)) == pytest.approx(0.25)

    def test_skew_signal(self):
        rows = [("hub", f"x{i}") for i in range(9)] + [("solo", "y")]
        stats = TableStats.from_rows(rows, 2)
        assert stats.skew(0) == pytest.approx(0.9)

    def test_relation_maintains_stats_on_insert_delete(self):
        db = Database()
        rel = db.declare("Infront", INFRONTREL, [("a", "b"), ("b", "c")])
        stats = rel.stats()
        assert stats.row_count == 2
        rel.insert([("c", "d")])
        assert rel.stats().row_count == 3 and rel.stats().distinct(0) == 3
        rel.delete([("a", "b")])
        assert rel.stats().row_count == 2 and rel.stats().distinct(0) == 2
        # it is the same live object, updated in place
        assert rel.stats() is stats

    def test_delta_stats_absorb(self):
        tracked = DeltaStats(2)
        tracked.absorb({("a", "b"), ("a", "c")})
        tracked.absorb({("b", "c")})
        assert tracked.row_count == 3
        assert tracked.deltas_applied == 2
        assert tracked.peak_delta == 2
        assert tracked.table.distinct(0) == 2

    def test_catalog_records_fixpoint_observations(self):
        db = bom_database(generate_bom(assemblies=1, depth=3, seed=1))
        node = d.constructed("Contains", "explode")
        result = construct_compiled(db, node)
        system = instantiate(db, node)
        observed = db.stats.constructed_estimate(system.root)
        assert observed == len(result.rows)

    def test_catalog_observation_invalidated_by_base_mutation(self):
        db = bom_database(generate_bom(assemblies=1, depth=3, seed=1))
        node = d.constructed("Contains", "explode")
        construct_compiled(db, node)
        system = instantiate(db, node)
        assert db.stats.constructed_estimate(system.root) is not None
        db["Contains"].insert([("brand_new_part", "brand_new_sub")])
        assert db.stats.constructed_estimate(system.root) is None


# ---------------------------------------------------------------------------
# Cost model estimates
# ---------------------------------------------------------------------------


def _skewed_db(seed: int = 3) -> Database:
    """Big low-selectivity relation + small high-selectivity relation."""
    rng = random.Random(seed)
    bigrec = record("bigrec", a=STRING, b=STRING)
    smallrec = record("smallrec", b=STRING, c=STRING)
    db = Database("skew")
    db.declare(
        "Big",
        relation_type("bigrel", bigrec),
        {(f"a{rng.randrange(500)}", f"b{rng.randrange(10)}") for _ in range(1200)},
    )
    db.declare(
        "Small",
        relation_type("smallrel", smallrec),
        [(f"b{i}", f"c{i % 4}") for i in range(10)],
    )
    return db


def _skew_query():
    return d.query(
        d.branch(
            d.each("x", "Big"), d.each("y", "Small"),
            pred=d.and_(
                d.eq(d.a("x", "b"), d.a("y", "b")), d.eq(d.a("y", "c"), "c0")
            ),
            targets=[d.a("x", "a"), d.a("y", "c")],
        )
    )


class TestCostModel:
    def test_relation_cardinality_is_exact(self):
        db = make_cad_db()
        model = CostModel(db)
        from repro.compiler.plans import Source

        assert model.source_cardinality(Source("relation", name="Infront")) == 3.0

    def test_key_selectivity_from_stats(self):
        db = make_cad_db()
        model = CostModel(db)
        from repro.compiler.plans import Source

        sel = model.key_selectivity(Source("relation", name="Infront"), (0,))
        assert sel == pytest.approx(1 / 3)

    def test_join_order_on_skewed_data(self):
        """Cost-based ordering starts from the small selective relation
        even though the big one is written first."""
        db = _skewed_db()
        plan_cost = compile_query(db, _skew_query(), optimizer="cost")
        plan_syn = compile_query(db, _skew_query(), optimizer="syntactic")
        assert [s.var for s in plan_cost.branches[0].steps] == ["y", "x"]
        assert [s.var for s in plan_syn.branches[0].steps] == ["x", "y"]
        # and it pays off: far fewer rows touched for identical answers
        stats_cost, stats_syn = PlanStats(), PlanStats()
        rows_cost = plan_cost.execute(ExecutionContext(db, stats=stats_cost))
        rows_syn = plan_syn.execute(ExecutionContext(db, stats=stats_syn))
        assert rows_cost == rows_syn
        assert stats_cost.rows_scanned < stats_syn.rows_scanned / 2

    def test_estimates_close_to_actuals(self):
        """Estimated output cardinality within 2x of actual on skew."""
        db = _skewed_db()
        plan = compile_query(db, _skew_query(), optimizer="cost")
        actual = len(plan.execute(ExecutionContext(db)))
        est = plan.branches[0].est_out
        assert est is not None and actual > 0
        assert actual / 2 <= est <= actual * 2

    def test_delta_estimated_smaller_than_full(self):
        db = bom_database(generate_bom(assemblies=2, depth=3, seed=5))
        from repro.compiler import fixpoint_apply_estimates

        system = instantiate(db, d.constructed("Contains", "explode"))
        estimates = fixpoint_apply_estimates(db, system)
        root = system.root
        delta = estimates[("__seminaive__", "delta", root)]
        full = estimates[("__seminaive__", "new", root)]
        assert delta < full

    def test_differential_plan_driven_by_delta(self):
        db = bom_database(generate_bom(assemblies=2, depth=3, seed=5))
        system = instantiate(db, d.constructed("Contains", "explode"))
        program = compile_fixpoint(db, system)
        (diff_plan,) = program.diff_plans.values()
        first_step = diff_plan.branches[0].steps[0]
        assert first_step.source.kind == "apply"
        assert first_step.source.token[1] == "delta"

    def test_single_row_relation_scans(self):
        """Cost gate: a 1-row source with distinct=1 gains nothing from an
        index, so the equality runs as a filter instead."""
        db = Database()
        db.declare("One", INFRONTREL, [("a", "a")])
        q = d.query(
            d.branch(d.each("r", "One"), pred=d.eq(d.a("r", "front"), "a"))
        )
        plan = compile_query(db, q, optimizer="cost")
        assert plan.branches[0].steps[0].key_positions == ()
        assert run_query(db, q) == {("a", "a")}


class TestResidualPricing:
    """Memberships and quantifiers priced instead of the old un-priced
    fallback (the first ROADMAP planner follow-up)."""

    def _membership_db(self):
        from repro.types import record

        arec = record("arec", k=STRING, j=STRING)
        brec = record("brec", j=STRING, w=STRING)
        trec = record("trec", k=STRING)
        db = Database("member")
        db.declare("B", relation_type("brel", brec),
                   [(f"j{i}", f"w{i}") for i in range(300)])
        db.declare("A", relation_type("arel", arec),
                   [(f"k{i}", f"j{i}") for i in range(300)])
        db.declare("Tiny", relation_type("trel", trec),
                   [("k3",), ("k7",), ("k11",)])
        return db

    def _membership_query(self):
        return d.query(
            d.branch(
                d.each("x", "B"), d.each("y", "A"),
                pred=d.and_(
                    d.eq(d.a("x", "j"), d.a("y", "j")),
                    d.in_(d.a("y", "k"), "Tiny"),
                ),
                targets=[d.a("x", "w"), d.a("y", "k")],
            )
        )

    def test_membership_selectivity_from_stats(self):
        """|Tiny| = 3 over 300 distinct keys: selectivity 1%."""
        from repro.compiler.plans import Source

        db = self._membership_db()
        model = CostModel(db)
        sel = model.predicate_selectivity(
            d.in_(d.a("y", "k"), "Tiny"),
            Source("relation", name="A"),
            db["A"].element_type,
        )
        assert sel == pytest.approx(0.01)

    def test_membership_pins_chosen_plan(self):
        """The membership-restricted relation wins the outer position
        even though it is written second; the un-priced (syntactic)
        order starts from the big partner.  Answers agree."""
        db = self._membership_db()
        q = self._membership_query()
        plan_cost = compile_query(db, q, optimizer="cost")
        plan_syn = compile_query(db, q, optimizer="syntactic")
        assert [s.var for s in plan_cost.branches[0].steps] == ["y", "x"]
        assert [s.var for s in plan_syn.branches[0].steps] == ["x", "y"]
        rows_cost = plan_cost.execute(ExecutionContext(db))
        rows_syn = plan_syn.execute(ExecutionContext(db))
        assert rows_cost == rows_syn and len(rows_cost) == 3

    def test_quantifier_selectivities_ordered(self):
        """ALL over a big range is far more selective than SOME."""
        db = self._membership_db()
        model = CostModel(db)
        inner = d.eq(d.a("s", "j"), "j1")
        some_sel = model.predicate_selectivity(d.some("s", "B", inner))
        all_sel = model.predicate_selectivity(d.all_("s", "B", inner))
        assert 0.0 < all_sel < some_sel <= 0.95

    def test_unrecognized_residual_stays_neutral(self):
        db = self._membership_db()
        model = CostModel(db)
        assert model.predicate_selectivity(d.TRUE) == 1.0


class TestBulkLoad:
    def test_insert_many_matches_insert(self):
        db1, db2 = Database(), Database()
        rows = [(f"a{i}", f"b{i % 7}") for i in range(100)]
        r1 = db1.declare("X", INFRONTREL)
        r2 = db2.declare("Y", INFRONTREL)
        r1.stats()  # force live statistics before loading
        r2.stats()
        r1.insert(rows)
        r2.insert_many(rows)
        assert r1.rows() == r2.rows()
        s1, s2 = r1.stats(), r2.stats()
        assert s1.row_count == s2.row_count == 100
        assert [c.distinct for c in s1.columns] == [c.distinct for c in s2.columns]
        assert s1.eq_selectivity(1) == pytest.approx(s2.eq_selectivity(1))

    def test_insert_many_type_and_key_checked(self):
        from repro.errors import TypeMismatchError

        db = Database()
        rel = db.declare("X", INFRONTREL)
        with pytest.raises(TypeMismatchError):
            rel.insert_many([("ok", "ok"), ("bad",)])
        assert len(rel) == 0  # rejected load leaves the value unchanged

    def test_insert_many_updates_histogram_in_bulk(self):
        from repro.types import INTEGER, record

        rec = record("nrec", n=INTEGER)
        db = Database()
        rel = db.declare("N", relation_type("nrel", rec),
                         [(i,) for i in range(200)])
        stats = rel.stats()
        column = stats.columns[0]
        assert column.histogram() is not None
        builds = column.histogram_builds
        rel.insert_many([(i,) for i in range(200, 260)])
        # maintained incrementally: counts moved, no rebuild forced
        assert stats.row_count == 260
        assert column.histogram_builds == builds
        assert column.histogram().total == 260

    def test_assign_installs_stats_immediately(self):
        """The assign fix: the first post-assign plan is priced from
        real statistics, not a blind lazy rebuild."""
        db = Database()
        rel = db.declare("X", INFRONTREL)
        rel.assign([(f"a{i}", f"b{i % 5}") for i in range(50)])
        # stats are present without any probe having forced a build
        assert rel._stats is not None
        assert rel._stats.row_count == 50
        assert rel._stats.distinct(1) == 5


# ---------------------------------------------------------------------------
# Cost-gated pushdown and access paths
# ---------------------------------------------------------------------------


class TestCostGates:
    def test_pushdown_decisions_logged(self):
        db = make_cad_db()
        from repro import paper

        full = paper.cad_database(mutual=False)
        q = d.query(
            d.branch(
                d.each("r", d.constructed("Infront", "ahead2")),
                pred=d.eq(d.a("r", "head"), "table"),
            )
        )
        rewritten, decisions = cost_gated_inline(full, q)
        assert decisions and all(dec.inlined for dec in decisions)
        assert "inline" in decisions[0].describe()

    def test_choose_access_path_prefers_physical_for_heavy_use(self):
        db = _tc_db(chain(32))
        node = d.constructed("Infront", "ahead")
        light = choose_access_path(db, node, "head", expected_invocations=1)
        heavy = choose_access_path(
            db, node, "head", expected_invocations=500, allow_specialization=False
        )
        assert isinstance(light, LogicalAccessPath)
        assert isinstance(heavy, PhysicalAccessPath)
        assert heavy.lookup("n0") == light.lookup("n0")


def _tc_db(edges):
    from repro import paper

    return paper.cad_database(infront=edges, mutual=False)


# ---------------------------------------------------------------------------
# explain() regression: the BOM bound query
# ---------------------------------------------------------------------------


class TestExplainRegression:
    def test_bom_differential_plan_pinned(self):
        """Pin the chosen differential plan for the BOM explode query."""
        db = bom_database(generate_bom(assemblies=2, depth=3, fanout=3, seed=7))
        system = instantiate(db, d.constructed("Contains", "explode"))
        program = compile_fixpoint(db, system)
        values = program.run()
        text = program.explain()
        # the differential loop nest: delta outer, indexed Contains inner
        assert "EACH e IN @Δexplode via scan" in text
        assert "EACH c IN Contains via index[1]" in text
        # estimated and actual row counts are reported side by side
        assert "est=" in text and "act=" in text
        # and the actuals for the base plan are exact: the base branch
        # emits each Contains row exactly once
        base_plan = next(iter(program.base_plans.values()))
        assert base_plan.branches[0].actual_emitted == len(db["Contains"])

    def test_estimation_quality_reported(self):
        db = bom_database(generate_bom(assemblies=2, depth=3, fanout=3, seed=7))
        node = d.constructed("Contains", "explode")
        first = construct_compiled(db, node)
        # second compilation sees the recorded observation: the top-level
        # full-value estimate now equals the measured size exactly
        system = instantiate(db, node)
        model = CostModel(db)
        assert model.apply_cardinality(system.root) == len(first.rows)

    def test_estimate_branch_orders_of_magnitude(self):
        db = _skewed_db()
        q = _skew_query()
        cost, rows = estimate_branch(db, q.branches[0])
        assert 0 < cost < float("inf")
        assert rows > 0
