"""Cross-subsystem integration tests.

These exercise full pipelines: DBPL text -> binder -> compiler -> engines,
render/parse round-trips, and compiled-vs-interpreted agreement on random
inputs — the end-to-end paths a downstream user would actually run.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import paper
from repro.calculus import Evaluator, dsl as d, render
from repro.compiler import compile_statement, construct_compiled, run_query
from repro.constructors import apply_constructor
from repro.datalog import DatalogEngine, parse_program
from repro.dbpl import Session, parse_expression
from repro.workloads import generate_scene, random_digraph


class TestRenderParseRoundTrip:
    """The pretty printer emits the DBPL surface syntax: parsing its
    output must reproduce the AST."""

    CASES = [
        d.query(d.branch(d.each("r", "Infront"))),
        d.query(
            d.branch(d.each("r", "Infront"), pred=d.eq(d.a("r", "front"), d.const("table")))
        ),
        d.query(
            d.branch(
                d.each("f", "Infront"), d.each("b", "Infront"),
                pred=d.eq(d.a("f", "back"), d.a("b", "front")),
                targets=[d.a("f", "front"), d.a("b", "back")],
            )
        ),
        d.query(
            d.branch(
                d.each("x", "Infront"),
                pred=d.some(("r1", "r2"), "Objects",
                            d.and_(d.eq(d.a("x", "front"), d.a("r1", "part")),
                                   d.eq(d.a("x", "back"), d.a("r2", "part")))),
            )
        ),
        d.query(
            d.branch(
                d.each("r", d.constructed(d.selected("Infront", "hidden_by",
                                                     d.const("table")), "ahead")),
            )
        ),
        d.query(
            d.branch(
                d.each("r", "Base"),
                pred=d.not_(d.some("s", d.constructed("Base", "strange"),
                                   d.eq(d.a("r", "number"),
                                        d.plus(d.a("s", "number"), d.const(1))))),
            )
        ),
        d.query(
            d.branch(
                d.each("r", "E"),
                pred=d.all_("y", "E", d.or_(d.not_(d.eq(d.a("y", "src"), d.const("b"))),
                                            d.eq(d.a("y", "dst"), d.a("r", "dst")))),
            )
        ),
    ]

    @pytest.mark.parametrize("query", CASES, ids=range(len(CASES)))
    def test_roundtrip(self, query):
        text = render(query)
        parsed = parse_expression(text)
        assert parsed == query

    def test_range_roundtrip(self):
        rng = d.constructed(d.selected("Infront", "hidden_by", d.const("t")), "ahead",
                            d.rel("Ontop"))
        assert parse_expression(render(rng)) == rng


class TestCompiledVsInterpreted:
    edges = st.sets(
        st.tuples(st.sampled_from("abcdef"), st.sampled_from("abcdef")).filter(
            lambda e: e[0] != e[1]
        ),
        max_size=16,
    )

    @settings(max_examples=25, deadline=None)
    @given(edges)
    def test_compiled_fixpoint_matches_interpreted(self, edges):
        db = paper.cad_database(infront=edges, mutual=False)
        compiled = construct_compiled(db, d.constructed("Infront", "ahead"))
        interpreted = apply_constructor(db, "Infront", "ahead", mode="naive")
        assert compiled.rows == interpreted.rows

    @settings(max_examples=25, deadline=None)
    @given(edges, st.sampled_from("abcdef"))
    def test_compiled_statement_matches_reference(self, edges, const):
        db = paper.cad_database(infront=edges, mutual=False)
        query = d.query(
            d.branch(
                d.each("r", d.constructed("Infront", "ahead")),
                pred=d.eq(d.a("r", "head"), const),
                targets=[d.a("r", "tail")],
            )
        )
        statement = compile_statement(db, query)
        reference = Evaluator(db).eval_query(query)
        assert statement.run() == reference


class TestFullPipeline:
    def test_dbpl_to_compiler_to_datalog(self):
        """One scenario through every major subsystem."""
        session = Session()
        session.execute(
            """
            TYPE edgerec = RECORD src, dst: STRING END;
                 edgerel = RELATION ... OF edgerec;
            VAR Links: edgerel;
            CONSTRUCTOR reach FOR Rel: edgerel (): edgerel;
            BEGIN EACH r IN Rel: TRUE,
                  <a.src, b.dst> OF EACH a IN Rel,
                       EACH b IN Rel{reach}: a.dst = b.src
            END reach;
            """
        )
        edges = random_digraph(12, 24, seed=9)
        session.assign("Links", edges)

        # 1. surface-syntax query
        via_syntax = session.query("Links{reach}")
        # 2. compiled fixpoint
        via_compiled = construct_compiled(
            session.db, parse_expression("Links{reach}")
        ).rows
        # 3. independent Datalog engine
        program = parse_program(
            "reach(X, Y) :- links(X, Y).\n"
            "reach(X, Y) :- links(X, Z), reach(Z, Y).\n"
        )
        via_datalog = DatalogEngine(program, {"links": set(edges)}).solve()["reach"]
        assert via_syntax == via_compiled == via_datalog

    def test_scene_queries_through_statement_compiler(self):
        db = generate_scene(rooms=3, row_length=4).database(mutual=True)
        first = db["Infront"].sorted_rows()[0][0]
        query = d.query(
            d.branch(
                d.each("r", d.constructed("Infront", "ahead", d.rel("Ontop"))),
                pred=d.eq(d.a("r", "head"), first),
                targets=[d.a("r", "tail")],
            )
        )
        statement = compile_statement(db, query)
        expected = {
            (t,) for (h, t) in apply_constructor(db, "Infront", "ahead", "Ontop").rows
            if h == first
        }
        assert statement.run() == expected

    def test_mixed_selected_constructed_compiled_query(self):
        db = paper.cad_database(
            objects=[("table", "f"), ("chair", "f"), ("door", "f")],
            infront=[("table", "chair"), ("chair", "door")],
            mutual=False,
        )
        q = d.query(
            d.branch(
                d.each("r", d.selected("Infront", "refint")),
                targets=[d.a("r", "back")],
            )
        )
        assert run_query(db, q) == {("chair",), ("door",)}

    def test_strange_via_session_override(self):
        """The guarded non-monotone path reachable from the library API."""
        from repro.relational import Database

        db = Database()
        db.declare("Base", paper.CARDREL, [(i,) for i in range(7)])
        paper.define_strange(db)
        result = apply_constructor(db, "Base", "strange", allow_nonmonotonic=True)
        assert sorted(v for (v,) in result.rows) == [0, 2, 4, 6]

    def test_key_constraint_survives_pipeline(self):
        session = Session()
        session.execute(
            """
            TYPE prec = RECORD id, kind: STRING END;
                 prel = RELATION id OF prec;
            VAR Parts: prel;
            """
        )
        from repro.errors import KeyConstraintError

        with pytest.raises(KeyConstraintError):
            session.assign("Parts", [("a", "x"), ("a", "y")])
