"""ExecOptions: the unified execution-options surface and its shims.

Covers the dataclass algebra (layering, cache-key normalization), the
legacy-keyword adapter (deprecation warnings, conflict rejection,
answer equivalence across both spellings at every entry point), and the
observable-fallback counters on Session.
"""

import warnings

import pytest
from helpers import make_cad_db

from repro import ExecOptions
from repro.compiler import (
    DEFAULT_EXECUTOR,
    DEFAULT_OPTIMIZER,
    compile_fixpoint,
    compile_query,
    construct_compiled,
    resolve_options,
)
from repro.calculus import dsl as d
from repro.datalog import DatalogEngine
from repro.dbpl import Session
from repro.errors import EvaluationError, TranslationError

INFRONT_QUERY = d.query(
    d.branch(d.each("r", "Infront"), pred=d.eq(d.a("r", "back"), "chair"))
)

AHEAD = """
TYPE prec = RECORD front, back: STRING END;
     prel = RELATION front, back OF prec;
VAR Infront: prel;
CONSTRUCTOR ahead FOR Rel: prel (): prel;
BEGIN EACH r IN Rel: TRUE,
      <r.front, a.back> OF EACH r IN Rel,
           EACH a IN Rel{ahead()}: r.back = a.front
END ahead;
"""


def make_session() -> Session:
    s = Session()
    s.execute(AHEAD)
    s.insert("Infront", [("table", "chair"), ("chair", "door")])
    return s


class TestExecOptionsAlgebra:
    def test_over_set_fields_win(self):
        base = ExecOptions(executor="tuple", optimizer="greedy")
        call = ExecOptions(executor="batch")
        merged = call.over(base)
        assert merged.executor == "batch"
        assert merged.optimizer == "greedy"

    def test_over_none_base_is_identity(self):
        opts = ExecOptions(executor="vector")
        assert opts.over(None) is opts

    def test_resolved_defaults(self):
        assert ExecOptions().resolved_executor == DEFAULT_EXECUTOR
        assert ExecOptions().resolved_optimizer == DEFAULT_OPTIMIZER

    def test_cache_key_normalizes_spellings_and_per_exec_fields(self):
        # Explicit defaults and unset fields fingerprint identically,
        # and snapshot/analysis never fragment the key.
        assert ExecOptions().cache_key() == ExecOptions(
            executor=DEFAULT_EXECUTOR,
            optimizer=DEFAULT_OPTIMIZER,
            analysis="lint",
            snapshot=object(),
        ).cache_key()
        assert (
            ExecOptions(executor="tuple").cache_key()
            != ExecOptions().cache_key()
        )

    def test_replace_returns_new_frozen_instance(self):
        opts = ExecOptions(executor="batch")
        other = opts.replace(optimizer="greedy")
        assert other is not opts
        assert other.optimizer == "greedy" and other.executor == "batch"
        with pytest.raises(Exception):
            opts.executor = "tuple"


class TestResolveOptions:
    def test_no_legacy_kwargs_no_warning(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            out = resolve_options(None, "here")
            assert out == ExecOptions()
            opts = ExecOptions(executor="tuple")
            assert resolve_options(opts, "here") is opts

    def test_loose_keyword_warns_and_merges(self):
        with pytest.warns(DeprecationWarning, match="here: .*executor"):
            out = resolve_options(None, "here", executor="tuple")
        assert out.executor == "tuple"

    def test_conflicting_spellings_raise(self):
        with pytest.raises(ValueError, match="executor"), warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            resolve_options(
                ExecOptions(executor="batch"), "here", executor="tuple"
            )

    def test_agreeing_spellings_merge(self):
        with pytest.warns(DeprecationWarning):
            out = resolve_options(
                ExecOptions(executor="batch", optimizer="greedy"),
                "here",
                executor="batch",
            )
        assert out == ExecOptions(executor="batch", optimizer="greedy")


class TestEntryPointShims:
    """Both spellings reach every front door and agree on answers."""

    def test_compile_query_shim(self):
        db = make_cad_db()
        with pytest.warns(DeprecationWarning, match="compile_query"):
            legacy = compile_query(db, INFRONT_QUERY, executor="tuple")
        modern = compile_query(
            db, INFRONT_QUERY, options=ExecOptions(executor="tuple")
        )
        assert legacy.executor == modern.executor == "tuple"

    def test_fixpoint_shims(self):
        from repro.constructors import instantiate
        from repro.dbpl import parse_expression

        s = make_session()
        node = parse_expression("Infront{ahead()}")
        system = instantiate(s.db, node)
        with pytest.warns(DeprecationWarning, match="compile_fixpoint"):
            legacy = compile_fixpoint(s.db, system, executor="rowbatch")
        modern = compile_fixpoint(
            s.db, system, options=ExecOptions(executor="rowbatch")
        )
        assert legacy.executor == modern.executor == "rowbatch"
        assert legacy.run() == modern.run()
        with pytest.warns(DeprecationWarning, match="construct_compiled"):
            rows = construct_compiled(s.db, node, executor="tuple").rows
        assert rows == construct_compiled(
            s.db, node, options=ExecOptions(executor="tuple")
        ).rows

    def test_session_shims_share_the_plan_cache(self):
        s = make_session()
        source = '{EACH r IN Infront: r.back = "chair"}'
        with pytest.warns(DeprecationWarning, match="Session.query"):
            legacy = s.query(source, executor="tuple")
        assert len(s.plan_cache) == 1
        modern = s.query(source, options=ExecOptions(executor="tuple"))
        assert legacy == modern
        # Same normalized fingerprint -> no second compilation.
        assert len(s.plan_cache) == 1

    def test_session_constructor_shim(self):
        with pytest.warns(DeprecationWarning, match="Session"):
            s = Session(executor="tuple")
        assert s.options.executor == "tuple"
        assert Session(
            options=ExecOptions(executor="tuple")
        ).options == s.options

    def test_session_level_options_flow_into_queries(self):
        s = Session(options=ExecOptions(executor="tuple", analysis="lint"))
        s.execute(AHEAD)
        s.insert("Infront", [("table", "chair")])
        source = '{EACH r IN Infront: r.back = "chair"}'
        assert s.query(source) == {("table", "chair")}
        plan = s.plan_cache.get(
            next(iter(s.plan_cache._entries)), s.db.stats.epoch()
        )
        assert plan.options.resolved_executor == "tuple"

    def test_datalog_solve_shim(self):
        from repro.datalog import parse_program

        source = """
            edge(a, b). edge(b, c).
            path(X, Y) :- edge(X, Y).
            path(X, Z) :- edge(X, Y), path(Y, Z).
        """
        engine = DatalogEngine(parse_program(source))
        modern = engine.solve(
            "compiled", options=ExecOptions(executor="rowbatch")
        )
        with pytest.warns(DeprecationWarning, match="DatalogEngine.solve"):
            legacy = engine.solve("compiled", executor="rowbatch")
        assert legacy == modern
        assert modern["path"] == {("a", "b"), ("b", "c"), ("a", "c")}


class TestObservableFallbacks:
    def test_counters_start_at_zero_and_stay_put_on_happy_path(self):
        s = make_session()
        s.query('{EACH r IN Infront: r.back = "chair"}')
        s.query("Infront{ahead()}")
        assert set(s.fallbacks) == {
            "interpreted",
            "construct",
            "process_pool",
            "ship",
            "snapshot_sharded",
        }
        assert all(count == 0 for count in s.fallbacks.values())

    def test_interpreted_fallback_counts_and_hints(self, monkeypatch):
        s = make_session()
        diags = []
        s.on_diagnostic = diags.append

        def boom(node, options):
            raise TranslationError("untranslatable shape")

        monkeypatch.setattr(s, "_prepared_plan", boom)
        source = '{EACH r IN Infront: r.back = "chair"}'
        assert s.query(source) == {("table", "chair")}
        assert s.fallbacks["interpreted"] == 1
        assert s.fallbacks["construct"] == 0
        hints = [g for g in diags if g.code == "DBPL900"]
        assert len(hints) == 1
        assert hints[0].severity == "hint"
        assert hints[0].data["source"] == source
        assert "untranslatable shape" in hints[0].message

    def test_construct_fallback_counts_and_hints(self, monkeypatch):
        import repro.dbpl.session as session_mod

        s = make_session()
        diags = []
        s.on_diagnostic = diags.append
        expected = s.query("Infront{ahead()}", mode="seminaive")

        def boom(db, node, options=None):
            raise TranslationError("no fixpoint plan")

        monkeypatch.setattr(session_mod, "construct_compiled", boom)
        assert s.query("Infront{ahead()}") == expected
        assert s.fallbacks["interpreted"] == 0
        assert s.fallbacks["construct"] == 1
        (hint,) = [g for g in diags if g.code == "DBPL901"]
        assert "interpreted fixpoint" in hint.message

    def test_runtime_evaluation_error_propagates(self, monkeypatch):
        # Satellite of the fallback narrowing: a *runtime* failure in
        # the compiled fixpoint must surface, not silently re-run.
        import repro.dbpl.session as session_mod

        s = make_session()

        def boom(db, node, options=None):
            raise EvaluationError("mid-execution failure")

        monkeypatch.setattr(session_mod, "construct_compiled", boom)
        with pytest.raises(EvaluationError, match="mid-execution"):
            s.query("Infront{ahead()}")
        assert s.fallbacks["construct"] == 0
