"""Tests for the workload generators and the bench harness."""

import pytest

from repro.bench.harness import Table, measure, ratio
from repro.constructors import apply_constructor
from repro.workloads import (
    binary_tree,
    bom_database,
    chain,
    cycle,
    generate_bom,
    generate_family,
    generate_scene,
    grid,
    layered_dag,
    random_dag,
    random_digraph,
    sg_database,
)

from helpers import transitive_closure


class TestGraphGenerators:
    def test_chain_shape(self):
        edges = chain(5)
        assert len(edges) == 5
        assert edges[0] == ("n0", "n1") and edges[-1] == ("n4", "n5")

    def test_cycle_closes(self):
        edges = cycle(4)
        assert ("n3", "n0") in edges
        assert len(edges) == 4

    def test_binary_tree_counts(self):
        edges = binary_tree(4)
        assert len(edges) == 2 ** 4 - 2  # every non-root has one parent

    def test_grid_edge_count(self):
        edges = grid(3, 3)
        assert len(edges) == 2 * 3 * 2  # 6 right + 6 down

    def test_random_dag_is_acyclic(self):
        edges = random_dag(20, 40, seed=1)
        order = {f"n{i}": i for i in range(20)}
        assert all(order[a] < order[b] for a, b in edges)

    def test_random_digraph_no_self_loops(self):
        edges = random_digraph(15, 40, seed=2)
        assert all(a != b for a, b in edges)

    def test_determinism(self):
        assert random_digraph(10, 20, seed=3) == random_digraph(10, 20, seed=3)
        assert layered_dag(3, 4, seed=3) == layered_dag(3, 4, seed=3)

    def test_layered_dag_layers(self):
        edges = layered_dag(3, 4, seed=1)
        assert all(src.startswith("l0") or src.startswith("l1") for src, _ in edges)


class TestSceneGenerator:
    def test_scene_relations_consistent(self):
        scene = generate_scene(rooms=3, row_length=4)
        names = {name for name, _ in scene.objects}
        for a, b in scene.infront + scene.ontop:
            assert a in names and b in names

    def test_scene_database_runs(self):
        db = generate_scene(rooms=2, row_length=3).database(mutual=True)
        result = apply_constructor(db, "Infront", "ahead", "Ontop")
        assert len(result.rows) >= len(db["Infront"])

    def test_infront_forms_single_gallery(self):
        scene = generate_scene(rooms=3, row_length=3, stacks_per_room=0)
        closure = transitive_closure(scene.infront)
        first = scene.infront[0][0]
        reachable = {b for a, b in closure if a == first}
        # first furniture piece sees everything else in the gallery
        assert len(reachable) == 3 * 3 - 1


class TestBomAndGenealogy:
    def test_bom_explosion_superset_of_direct(self):
        edges = generate_bom(assemblies=2, depth=3)
        db = bom_database(edges)
        result = apply_constructor(db, "Contains", "explode")
        assert set(edges) <= set(result.rows)
        assert result.rows == transitive_closure(edges)

    def test_family_edges_point_to_parents(self):
        edges = generate_family(roots=1, depth=3)
        children = {c for c, _ in edges}
        assert all(c.startswith("c") for c in children)

    def test_same_generation_includes_siblings(self):
        edges = [("a", "p"), ("b", "p"), ("x", "a"), ("y", "b")]
        db = sg_database(edges)
        result = apply_constructor(db, "Sibling", "samegen", "Parent")
        assert ("a", "b") in result.rows
        assert ("x", "y") in result.rows  # cousins via sg(a, b)

    def test_same_generation_nonlinear_modes_agree(self):
        edges = generate_family(roots=2, depth=3, children=2)
        db = sg_database(edges)
        semi = apply_constructor(db, "Sibling", "samegen", "Parent", mode="seminaive")
        naive = apply_constructor(db, "Sibling", "samegen", "Parent", mode="naive")
        assert semi.rows == naive.rows


class TestHarness:
    def test_measure_returns_result_and_time(self):
        value, seconds = measure(lambda: 41 + 1, repeat=2)
        assert value == 42 and seconds >= 0

    def test_table_render_alignment(self):
        table = Table("T", ["col", "n"])
        table.add("a", 1)
        table.add("bb", 22)
        text = table.render()
        assert "T" in text and "col" in text
        lines = text.splitlines()
        assert len({len(l) for l in lines[2:5]}) == 1  # header+rows aligned

    def test_table_wrong_arity(self):
        table = Table("T", ["a"])
        with pytest.raises(ValueError):
            table.add(1, 2)

    def test_table_float_formatting(self):
        table = Table("T", ["x"])
        table.add(0.12345)
        assert "0.1234" in table.render() or "0.1235" in table.render()

    def test_ratio_zero_denominator(self):
        assert ratio(1.0, 0.0) == float("inf")

    def test_notes_rendered(self):
        table = Table("T", ["x"])
        table.add(1)
        table.note("hello")
        assert "note: hello" in table.render()
