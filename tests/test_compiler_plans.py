"""Tests for compiled plans, the compiled fixpoint, and the three levels."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import paper
from repro.calculus import Evaluator, ast, dsl as d
from repro.compiler import (
    PlanStats,
    compile_query,
    compile_statement,
    construct_compiled,
    inline_nonrecursive,
    run_query,
)
from repro.constructors import apply_constructor

from helpers import SCENE_INFRONT, SCENE_OBJECTS, SCENE_ONTOP


@pytest.fixture
def db():
    return paper.cad_database(SCENE_OBJECTS, SCENE_INFRONT, SCENE_ONTOP, mutual=False)


class TestCompiledQueries:
    def test_selection_uses_index(self, db):
        q = d.query(d.branch(d.each("r", "Infront"), pred=d.eq(d.a("r", "front"), "table")))
        stats = PlanStats()
        rows = run_query(db, q, stats=stats)
        assert rows == {("table", "chair")}
        assert stats.index_lookups == 1
        assert stats.rows_scanned <= 1  # only matching rows touched

    def test_join_via_index(self, db):
        q = d.query(
            d.branch(
                d.each("f", "Infront"), d.each("b", "Infront"),
                pred=d.eq(d.a("f", "back"), d.a("b", "front")),
                targets=[d.a("f", "front"), d.a("b", "back")],
            )
        )
        stats = PlanStats()
        rows = run_query(db, q, stats=stats)
        assert rows == {("table", "door"), ("rug", "chair")}
        assert stats.index_lookups >= 3  # one lookup per outer row

    def test_agrees_with_reference_evaluator(self, db):
        q = d.query(
            d.branch(
                d.each("f", "Infront"), d.each("b", "Infront"),
                pred=d.and_(
                    d.eq(d.a("f", "back"), d.a("b", "front")),
                    d.ne(d.a("f", "front"), d.a("b", "back")),
                ),
                targets=[d.a("f", "front"), d.a("b", "back")],
            )
        )
        assert run_query(db, q) == Evaluator(db).eval_query(q)

    def test_residual_quantifier_predicate(self, db):
        q = d.query(
            d.branch(
                d.each("r", "Infront"),
                pred=d.some("s", "Infront", d.eq(d.a("r", "back"), d.a("s", "front"))),
            )
        )
        assert run_query(db, q) == Evaluator(db).eval_query(q)

    def test_union_branches(self, db):
        q = d.query(
            d.branch(d.each("r", "Infront"), pred=d.eq(d.a("r", "front"), "table")),
            d.branch(d.each("r", "Infront"), pred=d.eq(d.a("r", "back"), "table")),
        )
        assert run_query(db, q) == {("table", "chair"), ("rug", "table")}

    def test_apply_var_source(self, db):
        av = ast.ApplyVar("tok", paper.AHEADREC)
        q = d.query(d.branch(d.each("r", av), pred=d.eq(d.a("r", "head"), "x")))
        rows = run_query(db, q, apply_values={"tok": {("x", "y"), ("z", "w")}})
        assert rows == {("x", "y")}

    def test_selected_range_computed_source(self, db):
        q = d.query(
            d.branch(
                d.each("r", d.selected("Infront", "hidden_by", d.const("table"))),
                targets=[d.a("r", "back")],
            )
        )
        assert run_query(db, q) == {("chair",)}

    def test_explain_mentions_access(self, db):
        q = d.query(d.branch(d.each("r", "Infront"), pred=d.eq(d.a("r", "front"), "table")))
        plan = compile_query(db, q)
        text = plan.explain()
        assert "index" in text and "EMIT" in text

    def test_arithmetic_filter(self):
        from repro.relational import Database

        db = Database()
        db.declare("Base", paper.CARDREL, [(i,) for i in range(10)])
        q = d.query(
            d.branch(
                d.each("r", "Base"), d.each("s", "Base"),
                pred=d.eq(d.a("r", "number"), d.plus(d.a("s", "number"), 1)),
                targets=[d.a("r", "number"), d.a("s", "number")],
            )
        )
        assert run_query(db, q) == {(i + 1, i) for i in range(9)}


# Property: compiled execution == reference evaluator on random queries.
nodes = st.sampled_from(["a", "b", "c", "d"])
edge_sets = st.sets(st.tuples(nodes, nodes), max_size=10)
consts = st.sampled_from(["a", "b", "c", "d"])


@settings(max_examples=40, deadline=None)
@given(edge_sets, consts, consts)
def test_compiled_matches_reference(edges, c1, c2):
    from helpers import make_edge_db

    db = make_edge_db(edges)
    q = d.query(
        d.branch(
            d.each("x", "E"), d.each("y", "E"),
            pred=d.and_(
                d.eq(d.a("x", "dst"), d.a("y", "src")),
                d.or_(d.eq(d.a("x", "src"), c1), d.eq(d.a("y", "dst"), c2)),
            ),
            targets=[d.a("x", "src"), d.a("y", "dst")],
        )
    )
    assert run_query(db, q) == Evaluator(db).eval_query(q)


class TestCompiledFixpoint:
    def test_matches_interpreted_engines(self, db):
        compiled = construct_compiled(db, d.constructed("Infront", "ahead"))
        interpreted = apply_constructor(db, "Infront", "ahead")
        assert compiled.rows == interpreted.rows
        assert compiled.stats.mode == "compiled-seminaive"

    def test_mutual_system_compiled(self):
        mdb = paper.cad_database(
            SCENE_OBJECTS, SCENE_INFRONT, SCENE_ONTOP, mutual=True
        )
        node = d.constructed("Infront", "ahead", d.rel("Ontop"))
        compiled = construct_compiled(mdb, node)
        from repro.constructors import construct

        assert compiled.rows == construct(mdb, node).rows

    def test_same_iterations_as_interpreted_seminaive(self, db):
        compiled = construct_compiled(db, d.constructed("Infront", "ahead"))
        interpreted = apply_constructor(db, "Infront", "ahead", mode="seminaive")
        assert compiled.stats.iterations == interpreted.stats.iterations

    def test_positivity_enforced(self):
        from repro.errors import PositivityError
        from repro.relational import Database

        cdb = Database()
        cdb.declare("Base", paper.CARDREL, [(1,)])
        paper.define_strange(cdb)
        with pytest.raises(PositivityError):
            construct_compiled(cdb, d.constructed("Base", "strange"))


class TestInlining:
    def test_nonrecursive_application_inlined(self, db):
        q = d.query(
            d.branch(
                d.each("r", d.constructed("Infront", "ahead2")),
                pred=d.eq(d.a("r", "head"), "table"),
            )
        )
        inlined = inline_nonrecursive(db, q)
        assert not any(
            isinstance(n, ast.Constructed) for n in ast.walk(inlined)
        )
        assert Evaluator(db).eval_query(inlined) == Evaluator(db).eval_query(q)

    def test_union_distribution_case3(self, db):
        # ahead2 has 2 body branches -> inlining yields 2 query branches
        q = d.query(d.branch(d.each("r", d.constructed("Infront", "ahead2"))))
        inlined = inline_nonrecursive(db, q)
        assert len(inlined.branches) == 2

    def test_case2_join_substitution(self, db):
        """The restriction r.head = "rug" must reach the inner variables."""
        q = d.query(
            d.branch(
                d.each("r", d.constructed("Infront", "ahead2")),
                pred=d.eq(d.a("r", "head"), "rug"),
                targets=[d.a("r", "tail")],
            )
        )
        inlined = inline_nonrecursive(db, q)
        assert Evaluator(db).eval_query(inlined) == {("table",), ("chair",)}
        # evidence of substitution: no branch references variable "r"
        for branch in inlined.branches:
            assert "r" not in {b.var for b in branch.bindings}

    def test_recursive_application_left_alone(self, db):
        q = d.query(d.branch(d.each("r", d.constructed("Infront", "ahead"))))
        inlined = inline_nonrecursive(db, q)
        assert any(isinstance(n, ast.Constructed) for n in ast.walk(inlined))


class TestThreeLevels:
    def test_compile_and_run_recursive_statement(self, db):
        q = d.query(
            d.branch(
                d.each("r", d.constructed("Infront", "ahead")),
                pred=d.eq(d.a("r", "head"), "rug"),
                targets=[d.a("r", "tail")],
            )
        )
        statement = compile_statement(db, q)
        assert statement.run() == {("table",), ("chair",), ("door",)}

    def test_specialization_detected(self, db):
        q = d.query(d.branch(d.each("r", d.constructed("Infront", "ahead"))))
        statement = compile_statement(db, q)
        assert len(statement.specializations) == 1
        (shape,) = statement.specializations.values()
        assert shape.linearity == "left"

    def test_explain_shows_program(self, db):
        q = d.query(d.branch(d.each("r", d.constructed("Infront", "ahead"))))
        text = compile_statement(db, q).explain()
        assert "fixpoint program" in text and "top plan" in text

    def test_nonrecursive_statement_has_no_fixpoints(self, db):
        q = d.query(d.branch(d.each("r", d.constructed("Infront", "ahead2"))))
        statement = compile_statement(db, q)
        assert not statement.fixpoints
        assert statement.run() == apply_constructor(db, "Infront", "ahead2").rows
