"""Unit tests for range, enum, record, and relation types (section 2)."""

import pytest

from repro.errors import KeyConstraintError, SchemaError
from repro.types import (
    CARDINAL,
    INTEGER,
    STRING,
    EnumType,
    Field,
    RangeType,
    RecordType,
    record,
    relation_type,
)


class TestRangeType:
    """partidtype IS RANGE 1..100 (paper section 2.1)."""

    def setup_method(self):
        self.partid = RangeType("partidtype", 1, 100)

    def test_contains_bounds(self):
        assert self.partid.contains(1)
        assert self.partid.contains(100)

    def test_rejects_outside(self):
        assert not self.partid.contains(0)
        assert not self.partid.contains(101)

    def test_rejects_non_integer(self):
        assert not self.partid.contains("5")
        assert not self.partid.contains(True)

    def test_domain_predicate_matches_paper(self):
        assert self.partid.domain_predicate("p") == (
            "EACH p IN integer: 1 <= p AND p <= 100"
        )

    def test_empty_range_rejected(self):
        with pytest.raises(SchemaError):
            RangeType("bad", 10, 1)

    def test_cardinal_base(self):
        small = RangeType("small", 0, 3, base=CARDINAL)
        assert small.contains(0)
        assert not small.contains(-1)

    def test_string_base_rejected(self):
        with pytest.raises(SchemaError):
            RangeType("bad", 1, 2, base=STRING)

    def test_numeric_family(self):
        assert self.partid.family() == "numeric"


class TestEnumType:
    def setup_method(self):
        self.kind = EnumType("objectkind", ("chair", "table", "vase"))

    def test_contains_label(self):
        assert self.kind.contains("table")

    def test_rejects_unknown_label(self):
        assert not self.kind.contains("sofa")

    def test_ordinal(self):
        assert self.kind.ordinal("chair") == 0
        assert self.kind.ordinal("vase") == 2

    def test_ordinal_unknown_raises(self):
        with pytest.raises(SchemaError):
            self.kind.ordinal("sofa")

    def test_duplicate_labels_rejected(self):
        with pytest.raises(SchemaError):
            EnumType("bad", ("a", "a"))

    def test_empty_rejected(self):
        with pytest.raises(SchemaError):
            EnumType("bad", ())

    def test_distinct_enums_not_comparable(self):
        other = EnumType("colour", ("red", "blue"))
        assert self.kind.family() != other.family()


class TestRecordType:
    def setup_method(self):
        self.infront = record("infrontrec", front=STRING, back=STRING)

    def test_attribute_names_ordered(self):
        assert self.infront.attribute_names == ("front", "back")

    def test_index_of(self):
        assert self.infront.index_of("front") == 0
        assert self.infront.index_of("back") == 1

    def test_index_of_unknown_raises(self):
        with pytest.raises(SchemaError, match="no attribute"):
            self.infront.index_of("top")

    def test_field_type(self):
        assert self.infront.field_type("front") is STRING

    def test_contains_tuple(self):
        assert self.infront.contains(("vase", "table"))

    def test_rejects_wrong_arity(self):
        assert not self.infront.contains(("vase",))

    def test_rejects_wrong_field_type(self):
        assert not self.infront.contains(("vase", 7))

    def test_duplicate_fields_rejected(self):
        with pytest.raises(SchemaError):
            RecordType("bad", (Field("x", STRING), Field("x", STRING)))

    def test_empty_record_rejected(self):
        with pytest.raises(SchemaError):
            RecordType("bad", ())

    def test_positional_compatibility_across_names(self):
        # infrontrec(front, back) tuples may flow into aheadrec(head, tail):
        # the paper's identity branch EACH r IN Rel: TRUE relies on this.
        ahead = record("aheadrec", head=STRING, tail=STRING)
        assert self.infront.positionally_compatible(ahead)
        assert not self.infront.structurally_equal(ahead)

    def test_positional_incompatibility_on_types(self):
        other = record("other", a=STRING, b=INTEGER)
        assert not self.infront.positionally_compatible(other)


class TestRelationType:
    def setup_method(self):
        self.objectrec = record("objectrec", part=STRING, weight=INTEGER)
        self.objectrel = relation_type("objectrel", self.objectrec, key=("part",))

    def test_key_projection(self):
        assert self.objectrel.key_of(("table", 30)) == ("table",)

    def test_check_key_accepts_unique(self):
        self.objectrel.check_key([("table", 30), ("vase", 2)])

    def test_check_key_rejects_duplicate_key(self):
        with pytest.raises(KeyConstraintError):
            self.objectrel.check_key([("table", 30), ("table", 31)])

    def test_check_key_allows_identical_tuples(self):
        # r1.key = r2.key ==> r1 = r2 holds when the tuples are equal.
        self.objectrel.check_key([("table", 30), ("table", 30)])

    def test_unknown_key_attribute_rejected(self):
        with pytest.raises(SchemaError):
            relation_type("bad", self.objectrec, key=("nope",))

    def test_keyless_variant(self):
        derived = self.objectrel.keyless()
        assert derived.key == ()
        derived.check_key([("t", 1), ("t", 2)])  # no constraint

    def test_contains_checks_elements_and_key(self):
        assert self.objectrel.contains({("a", 1), ("b", 2)})
        assert not self.objectrel.contains({("a", 1), ("a", 2)})
        assert not self.objectrel.contains({("a", "x")})

    def test_empty_key_means_pure_set(self):
        rel = relation_type("setrel", self.objectrec)
        rel.check_key([("a", 1), ("a", 2)])  # fine: no key declared
