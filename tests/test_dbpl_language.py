"""End-to-end tests of the DBPL surface language: the paper runs verbatim."""

import pytest

from repro.dbpl import Session, parse_expression, parse_module, tokenize
from repro.calculus import ast
from repro.errors import BindingError, DBPLSyntaxError, IntegrityError, PositivityError

#: The paper's full CAD schema and definitions, in DBPL concrete syntax.
PAPER_MODULE = """
MODULE cad;

TYPE parttype    = STRING;
     objectrec   = RECORD part, kind: parttype END;
     objectrel   = RELATION part OF objectrec;
     infrontrec  = RECORD front, back: parttype END;
     infrontrel  = RELATION ... OF infrontrec;
     ontoprec    = RECORD top, base: parttype END;
     ontoprel    = RELATION ... OF ontoprec;
     aheadrec    = RECORD head, tail: parttype END;
     aheadrel    = RELATION ... OF aheadrec;
     aboverec    = RECORD high, low: parttype END;
     aboverel    = RELATION ... OF aboverec;

VAR Objects: objectrel;
    Infront: infrontrel;
    Ontop:   ontoprel;

SELECTOR refint FOR Rel: infrontrel;
BEGIN EACH r IN Rel: SOME r1, r2 IN Objects
      (r.front = r1.part AND r.back = r2.part)
END refint;

SELECTOR hidden_by (Obj: parttype) FOR Rel: infrontrel;
BEGIN EACH r IN Rel: r.front = Obj END hidden_by;

CONSTRUCTOR ahead2 FOR Rel: infrontrel (): aheadrel;
BEGIN EACH r IN Rel: TRUE,
      <f.front, b.back> OF EACH f, b IN Rel: f.back = b.front
END ahead2;

CONSTRUCTOR ahead FOR Rel: infrontrel (Ontop: ontoprel): aheadrel;
BEGIN EACH r IN Rel: TRUE,
      <r.front, ah.tail> OF EACH r IN Rel,
           EACH ah IN Rel{ahead(Ontop)}: r.back = ah.head,
      <r.front, ab.low> OF EACH r IN Rel,
           EACH ab IN Ontop{above(Rel)}: r.back = ab.high
END ahead;

CONSTRUCTOR above FOR Rel: ontoprel (Infront: infrontrel): aboverel;
BEGIN EACH r IN Rel: TRUE,
      <r.top, ab.low> OF EACH r IN Rel,
           EACH ab IN Rel{above(Infront)}: r.base = ab.high,
      <r.top, ah.tail> OF EACH r IN Rel,
           EACH ah IN Infront{ahead(Rel)}: r.base = ah.head
END above;

END cad.
"""

SCENE_OBJECTS = [
    ("table", "furniture"), ("chair", "furniture"), ("door", "fixture"),
    ("rug", "textile"), ("vase", "decor"), ("lamp", "decor"), ("desk", "furniture"),
]
SCENE_INFRONT = [("table", "chair"), ("chair", "door"), ("rug", "table")]
SCENE_ONTOP = [("vase", "table"), ("lamp", "desk")]


@pytest.fixture
def session():
    s = Session()
    s.execute(PAPER_MODULE)
    s.assign("Objects", SCENE_OBJECTS)
    s.assign("Infront", SCENE_INFRONT)
    s.assign("Ontop", SCENE_ONTOP)
    return s


class TestLexer:
    def test_keywords_and_idents(self):
        kinds = [t.kind for t in tokenize("SELECTOR foo FOR Rel")]
        assert kinds == ["SELECTOR", "ident", "FOR", "ident", "eof"]

    def test_nested_comments(self):
        tokens = tokenize("a (* outer (* inner *) still *) b")
        assert [t.text for t in tokens[:-1]] == ["a", "b"]

    def test_unterminated_comment(self):
        with pytest.raises(DBPLSyntaxError):
            tokenize("(* oops")

    def test_string_literal(self):
        (tok, _eof) = tokenize('"table"')
        assert tok.kind == "string" and tok.text == "table"

    def test_symbols_longest_match(self):
        kinds = [t.kind for t in tokenize("<= <> .. :=")][:-1]
        assert kinds == ["<=", "<>", "..", ":="]

    def test_position_tracking(self):
        tokens = tokenize("a\n  b")
        assert tokens[1].line == 2 and tokens[1].column == 3


class TestParserShapes:
    def test_module_declarations_counted(self):
        # 11 types + 3 variables + 2 selectors + 3 constructors
        module = parse_module(PAPER_MODULE)
        assert len(module.declarations) == 19

    def test_expression_selected_constructed(self):
        node = parse_expression('Infront[hidden_by("table")]{ahead2}')
        assert isinstance(node, ast.Constructed)
        assert isinstance(node.base, ast.Selected)
        assert node.base.args == (ast.Const("table"),)

    def test_set_former_with_targets(self):
        node = parse_expression(
            "{EACH r IN Infront: TRUE, "
            "<f.front, b.back> OF EACH f, b IN Infront: f.back = b.front}"
        )
        assert isinstance(node, ast.Query)
        assert len(node.branches) == 2
        assert node.branches[1].targets == (
            ast.AttrRef("f", "front"), ast.AttrRef("b", "back"),
        )

    def test_bound_variable_becomes_varref(self):
        node = parse_expression("{EACH r IN E: r IN E}")
        pred = node.branches[0].pred
        assert pred == ast.InRel(ast.VarRef("r"), ast.RelRef("E"))

    def test_unbound_name_becomes_paramref(self):
        node = parse_expression("{EACH r IN E: r.front = Obj}")
        pred = node.branches[0].pred
        assert pred.right == ast.ParamRef("Obj")

    def test_arithmetic_precedence(self):
        node = parse_expression("{EACH r IN E: r.n = 1 + 2 * 3}")
        pred = node.branches[0].pred
        assert pred.right == ast.Arith(
            "+", ast.Const(1), ast.Arith("*", ast.Const(2), ast.Const(3))
        )

    def test_mismatched_end_name(self):
        with pytest.raises(DBPLSyntaxError, match="does not match"):
            parse_module(
                "SELECTOR s FOR Rel: t;\nBEGIN EACH r IN Rel: TRUE END wrong;"
            )

    def test_quantifier_multi_vars(self):
        node = parse_expression(
            "{EACH x IN E: SOME r1, r2 IN Objects (x.front = r1.part)}"
        )
        pred = node.branches[0].pred
        assert pred.vars == ("r1", "r2")


class TestSessionEndToEnd:
    def test_simple_query(self, session):
        rows = session.query('{EACH r IN Infront: r.front = "table"}')
        assert rows == {("table", "chair")}

    def test_ahead2_matches_library(self, session):
        rows = session.query("Infront{ahead2}")
        assert rows == {
            ("table", "chair"), ("chair", "door"), ("rug", "table"),
            ("table", "door"), ("rug", "chair"),
        }

    def test_mutual_recursion_through_syntax(self, session):
        rows = session.query("Ontop{above(Infront)}")
        assert rows == {
            ("vase", "table"), ("lamp", "desk"), ("vase", "chair"), ("vase", "door"),
        }

    def test_selected_range_query(self, session):
        rows = session.query('Infront[hidden_by("table")]')
        assert rows == {("table", "chair")}

    def test_paper_hidden_by_ahead_composition(self, session):
        rows = session.query('Infront[hidden_by("table")]{ahead(Ontop)}')
        assert rows == {("table", "chair")}

    def test_checked_assignment_rejects(self, session):
        with pytest.raises(IntegrityError):
            session.assign("Infront[refint]", [("ghost", "chair")])

    def test_checked_assignment_accepts(self, session):
        session.assign("Infront[refint]", [("chair", "table")])
        assert session.query("Infront") == {("chair", "table")}

    def test_nonsense_rejected_by_positivity(self, session):
        with pytest.raises(PositivityError):
            session.execute(
                """
                TYPE cardrec = RECORD number: CARDINAL END;
                     cardrel = RELATION ... OF cardrec;
                CONSTRUCTOR nonsense FOR Rel: cardrel (): cardrel;
                BEGIN EACH r IN Rel: NOT (r IN Rel{nonsense})
                END nonsense;
                """
            )

    def test_range_type_declaration(self):
        s = Session()
        s.execute("TYPE partidtype = RANGE 1..100;")
        from repro.types import RangeType

        assert isinstance(s.types["partidtype"], RangeType)

    def test_enum_type_declaration(self):
        s = Session()
        s.execute("TYPE colour = (red, green, blue);")
        assert s.types["colour"].labels == ("red", "green", "blue")

    def test_unknown_type_raises(self):
        s = Session()
        with pytest.raises(BindingError, match="unknown type"):
            s.execute("VAR X: mystery;")

    def test_scalar_var_rejected(self):
        s = Session()
        with pytest.raises(BindingError, match="relation-typed"):
            s.execute("VAR n: INTEGER;")

    def test_key_constraint_via_syntax(self, session):
        from repro.errors import KeyConstraintError

        with pytest.raises(KeyConstraintError):
            session.assign("Objects", [("table", "a"), ("table", "b")])
