"""Unit tests for the reference evaluator over the paper's expressions."""

import pytest

from repro.calculus import Evaluator, ast, dsl as d, evaluate
from repro.errors import EvaluationError

from helpers import make_edge_db


class TestSimpleSelection:
    def test_identity_branch(self, edge_db):
        q = d.query(d.branch(d.each("r", "E")))
        assert evaluate(edge_db, q) == edge_db["E"].rows()

    def test_selection_predicate(self, edge_db):
        q = d.query(d.branch(d.each("r", "E"), pred=d.eq(d.a("r", "src"), "b")))
        assert evaluate(edge_db, q) == {("b", "c"), ("b", "d")}

    def test_projection_targets(self, edge_db):
        q = d.query(d.branch(d.each("r", "E"), targets=[d.a("r", "dst")]))
        assert evaluate(edge_db, q) == {("b",), ("c",), ("d",)}

    def test_constant_target(self, edge_db):
        q = d.query(
            d.branch(d.each("r", "E"), pred=d.eq(d.a("r", "src"), "a"),
                     targets=[d.a("r", "src"), d.const("seen")])
        )
        assert evaluate(edge_db, q) == {("a", "seen")}

    def test_empty_result(self, edge_db):
        q = d.query(d.branch(d.each("r", "E"), pred=d.eq(d.a("r", "src"), "zz")))
        assert evaluate(edge_db, q) == set()


class TestJoinsAndUnions:
    def test_ahead_2_expression(self, cad_db):
        """The paper's explicit Ahead-2 value expression (section 2.3):

        { EACH r IN Infront: TRUE,
          <f.front, b.back> OF EACH f, b IN Infront: f.back = b.front }
        """
        q = d.query(
            d.branch(d.each("r", "Infront")),
            d.branch(
                d.each("f", "Infront"),
                d.each("b", "Infront"),
                pred=d.eq(d.a("f", "back"), d.a("b", "front")),
                targets=[d.a("f", "front"), d.a("b", "back")],
            ),
        )
        assert evaluate(cad_db, q) == {
            ("table", "chair"), ("chair", "door"), ("rug", "table"),
            ("table", "door"), ("rug", "chair"),
        }

    def test_union_deduplicates(self, edge_db):
        q = d.query(d.branch(d.each("r", "E")), d.branch(d.each("s", "E")))
        assert evaluate(edge_db, q) == edge_db["E"].rows()

    def test_self_join_triangle(self):
        db = make_edge_db([("a", "b"), ("b", "a"), ("a", "a")])
        q = d.query(
            d.branch(
                d.each("x", "E"), d.each("y", "E"),
                pred=d.and_(
                    d.eq(d.a("x", "dst"), d.a("y", "src")),
                    d.eq(d.a("y", "dst"), d.a("x", "src")),
                ),
                targets=[d.a("x", "src"), d.a("x", "dst")],
            )
        )
        assert evaluate(db, q) == {("a", "b"), ("b", "a"), ("a", "a")}


class TestQuantifiers:
    def test_some_finds_witness(self, cad_db):
        # Objects that are in front of something which is itself in front
        # of something: only 'table' (chair) and 'rug' (table).
        q = d.query(
            d.branch(
                d.each("r", "Infront"),
                pred=d.some("s", "Infront", d.eq(d.a("r", "back"), d.a("s", "front"))),
                targets=[d.a("r", "front")],
            )
        )
        assert evaluate(cad_db, q) == {("table",), ("rug",)}

    def test_all_vacuous_truth(self, edge_db):
        empty_range = d.inline(
            d.query(d.branch(d.each("x", "E"), pred=d.eq(d.a("x", "src"), "zz")))
        )
        q = d.query(
            d.branch(d.each("r", "E"), pred=d.all_("y", empty_range, d.eq(d.a("y", "src"), "never")))
        )
        assert evaluate(edge_db, q) == edge_db["E"].rows()

    def test_all_with_counterexample(self, edge_db):
        # ALL y IN E (y.src = "a") is false since E has other sources.
        q = d.query(
            d.branch(d.each("r", "E"), pred=d.all_("y", "E", d.eq(d.a("y", "src"), "a")))
        )
        assert evaluate(edge_db, q) == set()

    def test_multi_variable_some(self, cad_db):
        """SOME r1, r2 IN Objects (...) — the referential-integrity shape."""
        q = d.query(
            d.branch(
                d.each("x", "Infront"),
                pred=d.some(
                    ("r1", "r2"), "Objects",
                    d.and_(
                        d.eq(d.a("x", "front"), d.a("r1", "part")),
                        d.eq(d.a("x", "back"), d.a("r2", "part")),
                    ),
                ),
            )
        )
        assert evaluate(cad_db, q) == cad_db["Infront"].rows()

    def test_nested_quantifiers_shadowing(self, edge_db):
        inner = d.some("y", "E", d.eq(d.a("y", "src"), d.a("y", "dst")))
        q = d.query(d.branch(d.each("r", "E"), pred=d.not_(inner)))
        # no self-loop in edge_db, so NOT SOME ... is true everywhere
        assert evaluate(edge_db, q) == edge_db["E"].rows()


class TestMembershipAndArith:
    def test_membership_whole_var(self, edge_db):
        sub = d.inline(d.query(d.branch(d.each("x", "E"), pred=d.eq(d.a("x", "src"), "b"))))
        q = d.query(d.branch(d.each("r", "E"), pred=d.in_(d.v("r"), sub)))
        assert evaluate(edge_db, q) == {("b", "c"), ("b", "d")}

    def test_membership_tuple_cons(self, edge_db):
        q = d.query(
            d.branch(
                d.each("r", "E"),
                pred=d.in_(d.tup(d.a("r", "dst"), d.a("r", "src")), "E"),
            )
        )
        assert evaluate(edge_db, q) == set()  # no symmetric edge

    def test_arithmetic_comparison(self):
        from repro.types import CARDINAL, record, relation_type

        rec = record("cardrec", number=CARDINAL)
        rel = relation_type("cardrel", rec)
        from repro.relational import Database

        db = Database()
        db.declare("Base", rel, [(i,) for i in range(7)])
        # pairs where r.number = s.number + 1
        q = d.query(
            d.branch(
                d.each("r", "Base"), d.each("s", "Base"),
                pred=d.eq(d.a("r", "number"), d.plus(d.a("s", "number"), 1)),
                targets=[d.a("r", "number"), d.a("s", "number")],
            )
        )
        assert evaluate(db, q) == {(i + 1, i) for i in range(6)}

    def test_mod_and_times(self):
        ev = Evaluator(make_edge_db([]))
        assert ev.eval_term(d.mod(7, 4), {}) == 3
        assert ev.eval_term(d.times(6, 7), {}) == 42
        assert ev.eval_term(ast.Arith("DIV", ast.Const(7), ast.Const(2)), {}) == 3
        assert ev.eval_term(d.minus(7, 2), {}) == 5


class TestParameters:
    def test_scalar_parameter(self, cad_db):
        q = d.query(
            d.branch(d.each("r", "Infront"), pred=d.eq(d.a("r", "front"), d.param("Obj")))
        )
        ev = Evaluator(cad_db, params={"Obj": "table"})
        assert ev.eval_query(q) == {("table", "chair")}

    def test_relation_parameter(self, cad_db):
        q = d.query(d.branch(d.each("r", "Param")))
        ev = Evaluator(cad_db, params={"Param": cad_db["Ontop"]})
        assert ev.eval_query(q) == cad_db["Ontop"].rows()

    def test_unbound_parameter_raises(self, cad_db):
        q = d.query(
            d.branch(d.each("r", "Infront"), pred=d.eq(d.a("r", "front"), d.param("Obj")))
        )
        with pytest.raises(EvaluationError, match="Obj"):
            Evaluator(cad_db).eval_query(q)

    def test_scalar_param_in_range_position_raises(self, cad_db):
        q = d.query(d.branch(d.each("r", "Obj")))
        with pytest.raises(EvaluationError):
            Evaluator(cad_db, params={"Obj": "table"}).eval_query(q)


class TestErrorsAndStats:
    def test_identity_branch_two_bindings_raises(self, edge_db):
        q = d.query(d.branch(d.each("r", "E"), d.each("s", "E")))
        with pytest.raises(EvaluationError, match="target list"):
            evaluate(edge_db, q)

    def test_unbound_variable_raises(self, edge_db):
        q = d.query(d.branch(d.each("r", "E"), pred=d.eq(d.a("zz", "src"), "a")))
        with pytest.raises(EvaluationError, match="zz"):
            evaluate(edge_db, q)

    def test_stats_count_iterations(self, edge_db):
        ev = Evaluator(edge_db)
        q = d.query(d.branch(d.each("r", "E")))
        ev.eval_query(q)
        assert ev.stats.bindings_iterated == 4
        assert ev.stats.tuples_emitted == 4

    def test_apply_var_resolution(self, edge_db):
        from helpers import EDGEREC

        av = ast.ApplyVar("tok", EDGEREC)
        q = d.query(d.branch(d.each("r", av)))
        ev = Evaluator(edge_db, apply_values={"tok": {("x", "y")}})
        assert ev.eval_query(q) == {("x", "y")}

    def test_unbound_apply_var_raises(self, edge_db):
        from helpers import EDGEREC

        av = ast.ApplyVar("nope", EDGEREC)
        q = d.query(d.branch(d.each("r", av)))
        with pytest.raises(EvaluationError):
            Evaluator(edge_db).eval_query(q)


class TestSchemaInference:
    def test_identity_inline_schema(self, edge_db):
        ev = Evaluator(edge_db)
        inner = d.inline(d.query(d.branch(d.each("x", "E"))))
        schema = ev.infer_schema(inner, {})
        assert schema.attribute_names == ("src", "dst")

    def test_target_list_schema_names(self, edge_db):
        ev = Evaluator(edge_db)
        inner = d.inline(
            d.query(
                d.branch(
                    d.each("x", "E"), d.each("y", "E"),
                    pred=d.eq(d.a("x", "dst"), d.a("y", "src")),
                    targets=[d.a("x", "src"), d.a("y", "dst")],
                )
            )
        )
        schema = ev.infer_schema(inner, {})
        assert schema.attribute_names == ("src", "dst")

    def test_duplicate_target_names_uniquified(self, edge_db):
        ev = Evaluator(edge_db)
        inner = d.inline(
            d.query(
                d.branch(
                    d.each("x", "E"),
                    targets=[d.a("x", "src"), d.a("x", "src")],
                )
            )
        )
        schema = ev.infer_schema(inner, {})
        assert len(set(schema.attribute_names)) == 2
