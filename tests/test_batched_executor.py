"""The batched physical-operator executor: equivalence and counters.

The refactor's safety net: the batched pipeline (``executor="batch"``)
must be extensionally identical to the tuple-at-a-time interpreter
(``executor="tuple"``), to the reference calculus evaluator, and to the
pre-refactor interpreted semi-naive engine — asserted through the
shared cross-executor harness in :mod:`helpers` (which also covers the
``sharded`` backend; the broad randomized sweep lives in
``test_executor_properties.py``) and over the BOM/CAD/genealogy/graph
workloads, including the mid-fixpoint re-planning paths of benchmark
E15.
"""

import random

import pytest

from helpers import (
    SCENE_INFRONT,
    SCENE_OBJECTS,
    SCENE_ONTOP,
    assert_executors_agree,
    assert_fixpoint_executors_agree,
    transitive_closure,
)
from repro import paper
from repro.bench.experiments import e15_drift_edges
from repro.calculus import Evaluator, dsl as d
from repro.compiler import (
    ExecutionContext,
    HashJoin,
    IndexLookup,
    PlanStats,
    Project,
    ResidualFilter,
    Scan,
    compile_fixpoint,
    compile_query,
)
from repro.constructors import instantiate
from repro.constructors.engines import seminaive_fixpoint
from repro.workloads import (
    bom_database,
    generate_bom,
    generate_family,
    generate_scene,
    sg_database,
)


def _random_edges(rng: random.Random) -> list[tuple[str, str]]:
    nodes = rng.randint(2, 12)
    count = rng.randint(0, min(30, nodes * nodes))
    edges = set()
    for _ in range(count):
        a, b = rng.randrange(nodes), rng.randrange(nodes)
        edges.add((f"n{a}", f"n{b}"))
    return sorted(edges)


# ---------------------------------------------------------------------------
# 50-seed property: every backend == reference == interpreted semi-naive
# (asserted through the shared harness of helpers.py)
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("seed", range(50))
def test_batched_executor_equivalence_on_random_graphs(seed):
    rng = random.Random(seed)
    edges = _random_edges(rng)
    db = paper.cad_database(infront=edges, mutual=False)

    # Non-recursive join query: all backends == reference evaluator.
    c1 = edges[0][0] if edges else "n0"
    q = d.query(
        d.branch(
            d.each("x", "Infront"), d.each("y", "Infront"),
            pred=d.and_(
                d.eq(d.a("x", "back"), d.a("y", "front")),
                d.or_(d.eq(d.a("x", "front"), c1), d.ne(d.a("y", "back"), c1)),
            ),
            targets=[d.a("x", "front"), d.a("y", "back")],
        )
    )
    assert_executors_agree(db, q)

    # Recursive fixpoint: every backend == interpreted semi-naive, and
    # all match the independent closure oracle.
    assert_fixpoint_executors_agree(
        lambda: paper.cad_database(infront=edges, mutual=False),
        d.constructed("Infront", "ahead"),
        oracle=transitive_closure(edges),
    )


@pytest.mark.parametrize("workload", ["bom", "cad", "genealogy"])
def test_batched_fixpoint_on_named_workloads(workload):
    if workload == "bom":
        db = bom_database(generate_bom(assemblies=3, depth=4, fanout=3, seed=2))
        node = d.constructed("Contains", "explode")
    elif workload == "cad":
        scene = generate_scene(rooms=4, row_length=5, stack_height=3)
        db = scene.database(mutual=True)
        node = d.constructed("Infront", "ahead", d.rel("Ontop"))
    else:
        db = sg_database(generate_family(roots=2, depth=4, children=2, seed=3))
        node = d.constructed("Sibling", "samegen", d.rel("Parent"))
    system = instantiate(db, node)
    semi = seminaive_fixpoint(db, system)
    batch = compile_fixpoint(db, system, executor="batch").run()
    tup = compile_fixpoint(db, system, executor="tuple").run()
    for key in system.apps:
        assert batch[key] == semi[key] == tup[key]


def test_batched_executor_through_replan_path():
    """Mid-fixpoint re-optimization swaps plans in while the batched
    executor is running; answers must not change and at least one
    re-plan must actually fire on the drift workload."""
    edges = e15_drift_edges(comps=4, sources=20, leaves=20)
    adaptive_db = paper.cad_database(infront=edges, mutual=False)
    adaptive_sys = instantiate(adaptive_db, d.constructed("Infront", "ahead"))
    adaptive = compile_fixpoint(adaptive_db, adaptive_sys, executor="batch")
    adaptive_vals = adaptive.run()
    frozen_db = paper.cad_database(infront=edges, mutual=False)
    frozen_sys = instantiate(frozen_db, d.constructed("Infront", "ahead"))
    frozen = compile_fixpoint(frozen_db, frozen_sys, replan_drift=None,
                              executor="tuple")
    frozen_vals = frozen.run()
    assert adaptive.replans >= 1
    assert adaptive_vals[adaptive_sys.root] == frozen_vals[frozen_sys.root]
    assert set(adaptive_vals[adaptive_sys.root]) == transitive_closure(edges)


def test_quantifier_residual_batched():
    db = paper.cad_database(mutual=False)
    q = d.query(
        d.branch(
            d.each("r", "Infront"),
            pred=d.some("s", "Infront", d.eq(d.a("r", "back"), d.a("s", "front"))),
        )
    )
    plan = compile_query(db, q)
    batch_rows = plan.execute(ExecutionContext(db), executor="batch")
    assert batch_rows == Evaluator(db).eval_query(q)
    residuals = [
        op
        for op in plan.branches[0].pipeline.operators()
        if isinstance(op, ResidualFilter)
    ]
    assert len(residuals) == 1 and residuals[0].actual_rows == len(batch_rows)


def test_arithmetic_and_params_batched():
    from repro.relational import Database

    db = Database()
    db.declare("Base", paper.CARDREL, [(i,) for i in range(10)])
    q = d.query(
        d.branch(
            d.each("r", "Base"), d.each("s", "Base"),
            pred=d.eq(d.a("r", "number"), d.plus(d.a("s", "number"), d.param("k"))),
            targets=[d.a("r", "number"), d.a("s", "number")],
        )
    )
    plan = compile_query(db, q, params={"k": 2})
    rows = plan.execute(ExecutionContext(db, params={"k": 2}))
    assert rows == {(i + 2, i) for i in range(8)}


# ---------------------------------------------------------------------------
# Operator pipeline structure and counters
# ---------------------------------------------------------------------------


class TestOperatorPipeline:
    def _db(self):
        return paper.cad_database(
            SCENE_OBJECTS, SCENE_INFRONT, SCENE_ONTOP, mutual=False
        )

    def test_constant_key_lowers_to_index_lookup(self):
        db = self._db()
        q = d.query(
            d.branch(d.each("r", "Infront"), pred=d.eq(d.a("r", "front"), "table"))
        )
        plan = compile_query(db, q)
        ops = list(plan.branches[0].ensure_pipeline().operators())
        assert isinstance(ops[0], IndexLookup)
        stats = PlanStats()
        rows = plan.execute(ExecutionContext(db, stats=stats))
        assert rows == {("table", "chair")}
        assert stats.index_lookups == 1 and stats.rows_scanned <= 1

    def test_join_lowers_to_hash_join(self):
        db = self._db()
        q = d.query(
            d.branch(
                d.each("f", "Infront"), d.each("b", "Infront"),
                pred=d.eq(d.a("f", "back"), d.a("b", "front")),
                targets=[d.a("f", "front"), d.a("b", "back")],
            )
        )
        plan = compile_query(db, q)
        ops = list(plan.branches[0].ensure_pipeline().operators())
        assert isinstance(ops[0], Scan)
        assert isinstance(ops[1], HashJoin)
        # No residual follows, so the projection fuses into the final
        # HashJoin instead of running as a standalone pass.
        assert isinstance(ops[-1], HashJoin)
        assert not any(isinstance(op, Project) for op in ops)
        # The row-major baseline pipeline keeps the standalone Project.
        row_ops = list(plan.branches[0].ensure_row_pipeline().operators())
        assert isinstance(row_ops[-1], Project)

    def test_per_operator_actuals_reported(self):
        db = self._db()
        q = d.query(
            d.branch(
                d.each("f", "Infront"), d.each("b", "Infront"),
                pred=d.eq(d.a("f", "back"), d.a("b", "front")),
                targets=[d.a("f", "front"), d.a("b", "back")],
            )
        )
        plan = compile_query(db, q)
        plan.execute(ExecutionContext(db))
        text = plan.explain()
        assert "operators:" in text
        assert "HASHJOIN Infront build[0]" in text
        assert "act=" in text and "DEDUP" in text
        join = [
            op
            for op in plan.branches[0].pipeline.operators()
            if isinstance(op, HashJoin)
        ][0]
        assert join.actual_rows == 2 and join.executions == 1

    def test_dedup_counts_distinct_only(self):
        db = self._db()
        q = d.query(
            d.branch(d.each("r", "Infront"), targets=[d.a("r", "front")]),
            d.branch(d.each("r", "Infront"), targets=[d.a("r", "front")]),
        )
        plan = compile_query(db, q)
        rows = plan.execute(ExecutionContext(db))
        assert plan.dedup.actual_rows == len(rows)

    def test_delta_apply_counts_fresh_tuples(self):
        db = bom_database(generate_bom(assemblies=2, depth=3, fanout=3, seed=7))
        system = instantiate(db, d.constructed("Contains", "explode"))
        program = compile_fixpoint(db, system)
        values = program.run()
        (delta_op,) = program.delta_ops.values()
        assert delta_op.actual_rows == len(values[system.root])
        assert "DELTAAPPLY" in program.explain()

    def test_tuple_executor_still_available(self):
        db = self._db()
        q = d.query(
            d.branch(
                d.each("f", "Infront"), d.each("b", "Infront"),
                pred=d.eq(d.a("f", "back"), d.a("b", "front")),
                targets=[d.a("f", "front"), d.a("b", "back")],
            )
        )
        stats = PlanStats()
        plan = compile_query(db, q, executor="tuple")
        rows = plan.execute(ExecutionContext(db, stats=stats))
        assert rows == {("table", "door"), ("rug", "chair")}
        # tuple mode leaves the per-step actuals behind as before
        assert plan.branches[0].actual_emitted == 2
