"""Tests for NOT/ALL occurrence analysis and the positivity constraint."""

from repro.calculus import (
    ast,
    dsl as d,
    free_range_names,
    free_tuple_vars,
    is_positive_in,
    occurrences_of,
    positivity_violations,
    range_occurrences,
)


class TestOccurrenceCounting:
    def test_plain_binding_has_zero_depth(self):
        q = d.query(d.branch(d.each("r", "Rel")))
        (occ,) = range_occurrences(q)
        assert occ.name == "Rel" and occ.nots == 0 and occ.alls == 0
        assert occ.positive

    def test_name_under_not(self):
        # NOT (r IN Rel) — one NOT level.
        p = d.not_(d.in_(d.v("r"), "Rel"))
        (occ,) = range_occurrences(p)
        assert occ.nots == 1 and occ.alls == 0
        assert not occ.positive

    def test_double_negation_is_positive(self):
        p = d.not_(d.not_(d.in_(d.v("r"), "Rel")))
        (occ,) = range_occurrences(p)
        assert occ.nots == 2 and occ.positive

    def test_name_in_all_range_counts(self):
        # ALL x IN Rel (pred): Rel is under the ALL.
        p = d.all_("x", "Rel", d.eq(d.a("x", "f"), 1))
        (occ,) = range_occurrences(p)
        assert occ.alls == 1 and not occ.positive

    def test_name_in_all_body_does_not_count(self):
        """Paper: in ALL r IN exp (p), a name appearing in p but not in
        exp is NOT considered to appear under this ALL."""
        p = d.all_("x", "Other", d.in_(d.v("x"), "Rel"))
        occs = {o.name: o for o in range_occurrences(p)}
        assert occs["Other"].alls == 1
        assert occs["Rel"].alls == 0 and occs["Rel"].positive

    def test_some_range_does_not_count(self):
        p = d.some("x", "Rel", d.eq(d.a("x", "f"), 1))
        (occ,) = range_occurrences(p)
        assert occ.total == 0

    def test_not_all_nesting_accumulates(self):
        # NOT (ALL x IN Rel (...)) — Rel at NOT+ALL = 2, even: positive.
        p = d.not_(d.all_("x", "Rel", d.eq(d.a("x", "f"), 1)))
        (occ,) = range_occurrences(p)
        assert occ.nots == 1 and occ.alls == 1 and occ.positive

    def test_selected_base_inherits_depth(self):
        p = d.not_(d.in_(d.v("r"), d.selected("Rel", "sel")))
        (occ,) = range_occurrences(p)
        assert occ.name == "Rel" and occ.nots == 1

    def test_constructed_argument_counted(self):
        rng = d.constructed("Base", "c", d.rel("ArgRel"))
        occs = {o.name for o in range_occurrences(d.query(d.branch(d.each("r", rng))))}
        assert occs == {"Base", "ArgRel"}

    def test_apply_var_token_counted(self):
        av = ast.ApplyVar(("c", "Base"), None)  # schema unused by analysis
        p = d.not_(d.some("s", av, d.eq(d.a("s", "n"), 1)))
        (occ,) = range_occurrences(p)
        assert occ.name == ("c", "Base") and occ.nots == 1


class TestPaperExamples:
    def test_nonsense_constructor_body_is_not_positive(self):
        """EACH r IN Rel: NOT (r IN Rel{nonsense}) — Rel under NOT: odd."""
        body = d.query(
            d.branch(
                d.each("r", "Rel"),
                pred=d.not_(d.in_(d.v("r"), d.constructed("Rel", "nonsense"))),
            )
        )
        violations = positivity_violations(body, {"Rel"})
        # the occurrence inside NOT(...) is odd; the binding one is fine
        assert len(violations) == 1
        assert violations[0].nots == 1

    def test_strange_constructor_body_is_not_positive(self):
        """EACH r IN Baserel: NOT SOME s IN Baserel{strange} (r.number = s.number+1)."""
        body = d.query(
            d.branch(
                d.each("r", "Baserel"),
                pred=d.not_(
                    d.some(
                        "s",
                        d.constructed("Baserel", "strange"),
                        d.eq(d.a("r", "number"), d.plus(d.a("s", "number"), 1)),
                    )
                ),
            )
        )
        assert not is_positive_in(body, {"Baserel"})

    def test_ahead_body_is_positive(self):
        """The recursive ahead body satisfies positivity."""
        body = d.query(
            d.branch(d.each("r", "Rel")),
            d.branch(
                d.each("f", "Rel"),
                d.each("b", d.constructed("Rel", "ahead")),
                pred=d.eq(d.a("f", "back"), d.a("b", "head")),
                targets=[d.a("f", "front"), d.a("b", "tail")],
            ),
        )
        assert is_positive_in(body, {"Rel"})

    def test_referential_integrity_positive_in_inserted_relation(self):
        """ALL x IN rex (SOME r1,r2 IN Objects (...)) is positive in Objects
        but not in rex."""
        p = d.all_(
            "x", "rex",
            d.some(("r1", "r2"), "Objects",
                   d.and_(d.eq(d.a("x", "front"), d.a("r1", "part")),
                          d.eq(d.a("x", "back"), d.a("r2", "part")))),
        )
        assert is_positive_in(p, {"Objects"})
        assert not is_positive_in(p, {"rex"})


class TestHelpers:
    def test_free_range_names(self):
        q = d.query(
            d.branch(
                d.each("r", "A"),
                pred=d.some("s", "B", d.in_(d.v("s"), d.selected("C", "sel"))),
            )
        )
        assert free_range_names(q) == {"A", "B", "C"}

    def test_free_tuple_vars_in_pred(self):
        p = d.some("s", "E", d.eq(d.a("r", "dst"), d.a("s", "src")))
        assert free_tuple_vars(p) == {"r"}

    def test_branch_binds_its_variables(self):
        br = d.branch(
            d.each("r", "E"),
            pred=d.eq(d.a("r", "src"), d.a("outer", "x")),
            targets=[d.a("r", "dst")],
        )
        assert free_tuple_vars(br) == {"outer"}

    def test_quantifier_shadowing(self):
        p = d.some("r", "E", d.eq(d.a("r", "src"), "a"))
        assert free_tuple_vars(p) == set()

    def test_occurrences_of_filters(self):
        q = d.query(d.branch(d.each("r", "A"), pred=d.in_(d.v("r"), "B")))
        assert {o.name for o in occurrences_of(q, {"B"})} == {"B"}
