"""Tests for NNF, universal elimination, simplification, range nesting.

The property tests generate random predicates over a one-edge-relation
database and check that each rewrite preserves semantics tuple-for-tuple
— the operational content of the paper's monotonicity-lemma proof sketch
and of the [JaKo 83] N1-N3 equivalences.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.calculus import (
    Evaluator,
    ast,
    dsl as d,
    eliminate_universals,
    is_positive_in,
    negation_normal_form,
    nest_binding,
    nest_quantifier,
    occurrences_of,
    simplify,
    unnest_query,
)
from repro.calculus.rewrite import conjoin, conjuncts

from helpers import make_edge_db

# ---------------------------------------------------------------------------
# Random predicate generation
# ---------------------------------------------------------------------------

_CONSTS = ["a", "b", "c", "d"]
_ATTRS = ["src", "dst"]


@st.composite
def predicates(draw, bound: tuple[str, ...] = ("r",), depth: int = 2):
    """Random predicate with all tuple variables drawn from ``bound``."""
    leaf_kinds = ["true", "cmp", "inrel"]
    kinds = leaf_kinds + (["not", "and", "or", "some", "all"] if depth > 0 else [])
    kind = draw(st.sampled_from(kinds))
    if kind == "true":
        return ast.TRUE
    if kind == "cmp":
        op = draw(st.sampled_from(["=", "<>", "<", "<="]))
        left = ast.AttrRef(draw(st.sampled_from(bound)), draw(st.sampled_from(_ATTRS)))
        if draw(st.booleans()):
            right = ast.Const(draw(st.sampled_from(_CONSTS)))
        else:
            right = ast.AttrRef(draw(st.sampled_from(bound)), draw(st.sampled_from(_ATTRS)))
        return ast.Cmp(op, left, right)
    if kind == "inrel":
        var = draw(st.sampled_from(bound))
        return ast.InRel(ast.VarRef(var), ast.RelRef("E"))
    if kind == "not":
        return ast.Not(draw(predicates(bound=bound, depth=depth - 1)))
    if kind in ("and", "or"):
        n = draw(st.integers(2, 3))
        parts = tuple(draw(predicates(bound=bound, depth=depth - 1)) for _ in range(n))
        return ast.And(parts) if kind == "and" else ast.Or(parts)
    # quantifiers
    var = f"q{len(bound)}"
    inner = draw(predicates(bound=bound + (var,), depth=depth - 1))
    if kind == "some":
        return ast.Some((var,), ast.RelRef("E"), inner)
    return ast.All((var,), ast.RelRef("E"), inner)


edge_sets = st.sets(
    st.tuples(st.sampled_from(_CONSTS), st.sampled_from(_CONSTS)), max_size=6
)


def _eval_pred_everywhere(db, pred):
    """Evaluate pred for each binding of r over E; return satisfying rows."""
    ev = Evaluator(db)
    q = ast.Query((ast.Branch((ast.Binding("r", ast.RelRef("E")),), pred),))
    return ev.eval_query(q)


# ---------------------------------------------------------------------------
# NNF and universal elimination
# ---------------------------------------------------------------------------


@settings(max_examples=60, deadline=None)
@given(edge_sets, predicates())
def test_nnf_preserves_semantics(edges, pred):
    db = make_edge_db(edges)
    assert _eval_pred_everywhere(db, pred) == _eval_pred_everywhere(
        db, negation_normal_form(pred)
    )


@settings(max_examples=60, deadline=None)
@given(edge_sets, predicates())
def test_eliminate_universals_preserves_semantics(edges, pred):
    db = make_edge_db(edges)
    assert _eval_pred_everywhere(db, pred) == _eval_pred_everywhere(
        db, eliminate_universals(pred)
    )


@settings(max_examples=60, deadline=None)
@given(predicates())
def test_nnf_preserves_positivity_parity(pred):
    """The range-coupled duality keeps every occurrence's NOT+ALL parity."""
    before = sorted(
        (occ.name, occ.total % 2) for occ in occurrences_of(pred, {"E"})
    )
    after = sorted(
        (occ.name, occ.total % 2)
        for occ in occurrences_of(negation_normal_form(pred), {"E"})
    )
    assert before == after


@settings(max_examples=60, deadline=None)
@given(predicates())
def test_eliminate_universals_preserves_parity(pred):
    before = is_positive_in(pred, {"E"})
    after = is_positive_in(eliminate_universals(pred), {"E"})
    assert before == after


@settings(max_examples=60, deadline=None)
@given(predicates())
def test_nnf_no_negated_connectives(pred):
    """After NNF, NOT applies only to atoms (TruePred or InRel)."""
    nnf = negation_normal_form(pred)
    for node in ast.walk(nnf):
        if isinstance(node, ast.Not):
            assert isinstance(node.pred, (ast.TruePred, ast.InRel))


@settings(max_examples=60, deadline=None)
@given(edge_sets, predicates())
def test_simplify_preserves_semantics(edges, pred):
    db = make_edge_db(edges)
    assert _eval_pred_everywhere(db, pred) == _eval_pred_everywhere(db, simplify(pred))


# ---------------------------------------------------------------------------
# Simplify unit cases
# ---------------------------------------------------------------------------


class TestSimplify:
    def test_flatten_nested_and(self):
        p = d.and_(d.and_(d.eq(d.a("r", "src"), "a"), d.eq(d.a("r", "dst"), "b")),
                   d.eq(d.a("r", "src"), "c"))
        out = simplify(p)
        assert isinstance(out, ast.And) and len(out.parts) == 3

    def test_true_unit_in_and(self):
        p = d.and_(ast.TRUE, d.eq(d.a("r", "src"), "a"))
        assert simplify(p) == d.eq(d.a("r", "src"), "a")

    def test_true_absorbs_or(self):
        p = d.or_(ast.TRUE, d.eq(d.a("r", "src"), "a"))
        assert simplify(p) == ast.TRUE

    def test_double_negation_removed(self):
        p = d.not_(d.not_(d.eq(d.a("r", "src"), "a")))
        assert simplify(p) == d.eq(d.a("r", "src"), "a")

    def test_empty_and_is_true(self):
        assert simplify(ast.And(())) == ast.TRUE

    def test_conjuncts_and_conjoin_roundtrip(self):
        p = d.and_(d.eq(d.a("r", "src"), "a"), d.eq(d.a("r", "dst"), "b"))
        assert conjoin(conjuncts(p)) == p
        assert conjuncts(ast.TRUE) == ()
        assert conjoin(()) == ast.TRUE


# ---------------------------------------------------------------------------
# Range nesting N1-N3
# ---------------------------------------------------------------------------


class TestRangeNesting:
    def test_n1_nest_then_unnest_roundtrip(self, edge_db):
        branch = d.branch(
            d.each("f", "E"), d.each("b", "E"),
            pred=d.and_(
                d.eq(d.a("f", "src"), "a"),
                d.eq(d.a("f", "dst"), d.a("b", "src")),
            ),
            targets=[d.a("f", "src"), d.a("b", "dst")],
        )
        nested = nest_binding(branch, "f")
        # the f-only conjunct moved into a nested range
        assert isinstance(nested.bindings[0].range, ast.QueryRange)
        q_orig = ast.Query((branch,))
        q_nested = ast.Query((nested,))
        ev = Evaluator(edge_db)
        assert ev.eval_query(q_orig) == Evaluator(edge_db).eval_query(q_nested)
        # unnesting recovers an equivalent flat query
        flat = unnest_query(q_nested)
        assert all(
            not isinstance(b.range, ast.QueryRange)
            for br in flat.branches for b in br.bindings
        )
        assert Evaluator(edge_db).eval_query(flat) == ev.eval_query(q_orig)

    def test_n1_nothing_movable(self):
        branch = d.branch(
            d.each("f", "E"), d.each("b", "E"),
            pred=d.eq(d.a("f", "dst"), d.a("b", "src")),
            targets=[d.a("f", "src"), d.a("b", "dst")],
        )
        assert nest_binding(branch, "f") is branch

    def test_n2_some_nesting(self, edge_db):
        pred = d.some(
            "s", "E",
            d.and_(d.eq(d.a("s", "src"), "b"), d.eq(d.a("r", "dst"), d.a("s", "src"))),
        )
        nested = nest_quantifier(pred)
        assert isinstance(nested.range, ast.QueryRange)
        q1 = d.query(d.branch(d.each("r", "E"), pred=pred))
        q2 = d.query(d.branch(d.each("r", "E"), pred=nested))
        assert Evaluator(edge_db).eval_query(q1) == Evaluator(edge_db).eval_query(q2)
        # and the <== direction flattens it back, semantics preserved
        flat = unnest_query(q2)
        assert Evaluator(edge_db).eval_query(flat) == Evaluator(edge_db).eval_query(q1)

    def test_n3_all_nesting(self, edge_db):
        # ALL s IN E (NOT(s.src = r.src is wrong shape: restriction must
        # mention only s) ... use: ALL s IN E (NOT(s.src="b") OR s.dst=r.dst)
        pred = d.all_(
            "s", "E",
            d.or_(d.not_(d.eq(d.a("s", "src"), "b")), d.eq(d.a("s", "dst"), d.a("r", "dst"))),
        )
        nested = nest_quantifier(pred)
        assert isinstance(nested.range, ast.QueryRange)
        q1 = d.query(d.branch(d.each("r", "E"), pred=pred))
        q2 = d.query(d.branch(d.each("r", "E"), pred=nested))
        assert Evaluator(edge_db).eval_query(q1) == Evaluator(edge_db).eval_query(q2)
        flat = unnest_query(q2)
        assert Evaluator(edge_db).eval_query(flat) == Evaluator(edge_db).eval_query(q1)

    def test_n3_wrong_shape_untouched(self):
        pred = d.all_("s", "E", d.eq(d.a("s", "src"), "a"))
        assert nest_quantifier(pred) is pred

    def test_unnest_deeply_nested(self, edge_db):
        inner = d.inline(d.query(d.branch(d.each("x", "E"), pred=d.eq(d.a("x", "src"), "a"))))
        middle = d.inline(d.query(d.branch(d.each("y", inner), pred=d.eq(d.a("y", "dst"), "b"))))
        q = d.query(d.branch(d.each("r", middle)))
        flat = unnest_query(q)
        (branch,) = flat.branches
        assert isinstance(branch.bindings[0].range, ast.RelRef)
        assert Evaluator(edge_db).eval_query(q) == Evaluator(edge_db).eval_query(flat)

    def test_unnest_preserves_targets(self, edge_db):
        inner = d.inline(d.query(d.branch(d.each("x", "E"), pred=d.eq(d.a("x", "src"), "b"))))
        q = d.query(d.branch(d.each("r", inner), targets=[d.a("r", "dst")]))
        flat = unnest_query(q)
        assert Evaluator(edge_db).eval_query(flat) == {("c",), ("d",)}

    def test_nest_unknown_var_raises(self):
        branch = d.branch(d.each("f", "E"))
        import pytest

        with pytest.raises(ValueError):
            nest_binding(branch, "zz")


@settings(max_examples=40, deadline=None)
@given(edge_sets, predicates(bound=("r", "s")))
def test_nest_binding_preserves_semantics(edges, pred):
    """Nesting whatever is movable for either variable never changes results."""
    db = make_edge_db(edges)
    branch = ast.Branch(
        (ast.Binding("r", ast.RelRef("E")), ast.Binding("s", ast.RelRef("E"))),
        pred,
        (ast.AttrRef("r", "src"), ast.AttrRef("s", "dst")),
    )
    q1 = ast.Query((branch,))
    q2 = ast.Query((nest_binding(branch, "r"),))
    q3 = ast.Query((nest_binding(branch, "s"),))
    expected = Evaluator(db).eval_query(q1)
    assert Evaluator(db).eval_query(q2) == expected
    assert Evaluator(db).eval_query(q3) == expected
