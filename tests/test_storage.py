"""Out-of-core columnar storage: format round-trips, scan-time pushdown,
partition pruning, persisted statistics, and the observable-degradation
satellites (DBPL902/903/904) that rode along with PR 10."""

import os

import pytest

from repro.compiler import ExecutionContext, ShardConfig, compile_query
from repro.compiler.options import ExecOptions
from repro.dbpl import Session, parse_expression
from repro.errors import StorageError
from repro.relational import (
    Database,
    open_database,
    pyarrow_enabled,
    set_pyarrow_enabled,
)
from repro.types import INTEGER, STRING, record, relation_type

PERSON = record("person", name=STRING, age=INTEGER, city=STRING)
PEOPLE = relation_type("people", PERSON, key=("name",))

FRIEND = record("friend", a=STRING, b=STRING)
FRIENDS = relation_type("friends", FRIEND)


def make_people_db(n: int = 1000) -> Database:
    """Rows sorted by name at spill time, so name ranges cluster into
    partitions and predicate pushdown has something to prune."""
    db = Database("folk")
    db.declare(
        "People",
        PEOPLE,
        [(f"p{i:04d}", i % 37, f"c{i % 7}") for i in range(n)],
    )
    db.declare(
        "Friends",
        FRIENDS,
        [(f"p{i:04d}", f"p{(i * 7) % n:04d}") for i in range(0, n, 3)],
    )
    return db


@pytest.fixture
def spilled(tmp_path):
    """(warm db, spilled path) with 10 partitions of 100 People rows."""
    db = make_people_db()
    path = str(tmp_path / "folk")
    db.spill(path, rows_per_partition=100)
    return db, path


SELECTIVE = '{EACH p IN People: p.name >= "p0900"}'
PROJECTED = '{<p.name> OF EACH p IN People: p.name >= "p0900"}'
JOIN = (
    '{<p.name, f.b> OF EACH p IN People, EACH f IN Friends: '
    'p.name = f.a AND p.name >= "p0900"}'
)


class TestFormatRoundTrip:
    def test_reopened_rows_equal_spilled_rows(self, spilled):
        db, path = spilled
        cold = open_database(path)
        for name in ("People", "Friends"):
            assert set(cold.relation(name)) == set(db.relation(name))

    def test_reopen_answers_len_without_scanning(self, spilled):
        db, path = spilled
        cold = open_database(path)
        rel = cold.relation("People")
        assert len(rel) == len(db.relation("People"))
        assert not rel.is_empty()
        assert rel.is_cold  # len() came from the manifest, not a scan

    def test_non_database_directory_is_rejected(self, tmp_path):
        bogus = tmp_path / "not-a-db"
        bogus.mkdir()
        (bogus / "meta.json").write_text('{"format": "something-else"}')
        with pytest.raises(StorageError, match="not a repro-columnar"):
            open_database(str(bogus))

    def test_mutation_materializes_and_stays_queryable(self, spilled):
        db, path = spilled
        cold = open_database(path)
        rel = cold.relation("People")
        rel.insert([("zz99", 99, "c0")])
        assert not rel.is_cold
        assert rel.cold_store is None  # pushdown turns off after writes
        assert ("zz99", 99, "c0") in rel
        assert len(rel) == len(db.relation("People")) + 1


class TestPushdown:
    def test_selective_scan_reads_one_partition(self, spilled):
        db, path = spilled
        cold = open_database(path)
        store = cold.relation("People").cold_store
        store.counters.reset()
        expected = Session(db).query(SELECTIVE)
        got = Session(cold).query(SELECTIVE)
        assert got == expected and len(got) == 100
        counters = store.counters.snapshot()
        assert counters["partitions_read"] == 1
        assert counters["partitions_pruned"] == 9
        assert cold.relation("People").is_cold

    def test_pushdown_beats_full_materialize_5x(self, spilled):
        db, path = spilled
        cold = open_database(path)
        store = cold.relation("People").cold_store
        store.counters.reset()
        Session(cold).query(PROJECTED)
        pushdown = store.counters.snapshot()
        store.counters.reset()
        cold.relation("People").rows()  # full materialization, all columns
        full = store.counters.snapshot()
        assert full["cells_decoded"] >= 5 * pushdown["cells_decoded"]
        assert full["rows_decoded"] >= 5 * pushdown["rows_decoded"]
        assert full["bytes_read"] >= 5 * pushdown["bytes_read"]

    def test_projection_skips_dead_columns(self, spilled):
        _db, path = spilled
        cold = open_database(path)
        store = cold.relation("People").cold_store
        store.counters.reset()
        got = Session(cold).query('{<p.city> OF EACH p IN People: TRUE}')
        assert got == {(f"c{i}",) for i in range(7)}
        counters = store.counters.snapshot()
        # Only the projected column decodes; the name/age pages are
        # seeked past entirely.
        assert counters["rows_decoded"] == 1000
        assert counters["cells_decoded"] == 1000

    def test_every_executor_agrees_on_the_cold_database(self, spilled):
        db, path = spilled
        expected = Session(db).query(JOIN)
        for executor in ("tuple", "rowbatch", "batch", "vector", "sharded"):
            cold = open_database(path)
            got = Session(cold).query(
                JOIN, options=ExecOptions(executor=executor)
            )
            assert got == expected, executor

    def test_parameterized_pushdown_resolves_per_execution(self, spilled):
        db, path = spilled
        cold = open_database(path)
        store = cold.relation("People").cold_store
        prepared = Session(cold).prepare(SELECTIVE)
        store.counters.reset()
        assert prepared.execute('p0900') == Session(db).query(SELECTIVE)
        assert store.counters.partitions_pruned == 9
        store.counters.reset()
        low = prepared.execute('p0000')
        assert len(low) == 1000  # rebound slot widens the scan again
        assert store.counters.partitions_pruned == 0

    def test_explain_reports_pushdown(self, spilled):
        _db, path = spilled
        cold = open_database(path)
        plan = compile_query(cold, parse_expression(PROJECTED))
        text = plan.explain()
        assert "pushdown[" in text

    def test_scan_cost_discount_prices_pruned_scans(self, spilled):
        _db, path = spilled
        cold = open_database(path)
        rel = cold.relation("People")
        fraction = rel.scan_cost_fraction(((0, ">=", "p0900"),))
        assert fraction == pytest.approx(0.1)
        assert rel.scan_cost_fraction(()) == 1.0


class TestPersistedStats:
    def test_reopened_stats_match_warm_stats(self, spilled):
        db, path = spilled
        warm = db.relation("People").stats()
        cold_rel = open_database(path).relation("People")
        cold = cold_rel.stats()
        assert cold.row_count == warm.row_count
        assert [c.distinct for c in cold.columns] == [
            c.distinct for c in warm.columns
        ]
        assert cold_rel.is_cold  # stats came from stats.pkl, not a scan

    def test_reopened_database_plans_like_the_warm_one(self, spilled):
        # No pruning predicate here: partition pruning legitimately
        # re-orders joins (the discounted scan becomes the cheaper
        # lead), so plan-shape parity is only promised for queries
        # whose costs depend on the persisted statistics alone.
        db, path = spilled
        cold = open_database(path)
        query = parse_expression(
            '{<p.name, f.b> OF EACH p IN People, EACH f IN Friends: '
            'p.name = f.a}'
        )
        warm_plan = compile_query(db, query)
        cold_plan = compile_query(cold, query)

        def shape(plan):
            return [
                [
                    (step.source.describe(), tuple(step.key_positions))
                    for step in branch.steps
                ]
                for branch in plan.branches
            ]

        assert shape(cold_plan) == shape(warm_plan)
        assert cold.relation("People").is_cold
        assert cold.relation("Friends").is_cold

    def test_epoch_and_plan_cache_work_before_any_scan(self, spilled):
        _db, path = spilled
        cold = open_database(path)
        epoch = cold.stats.epoch()
        assert cold.stats.epoch() == epoch  # stable while nothing changes
        assert cold.relation("People").is_cold
        s = Session(cold)
        s.query(SELECTIVE)
        s.query(SELECTIVE)
        assert s.plan_cache.hits >= 1


class TestParquetGate:
    def test_gate_degrades_cleanly_without_pyarrow(self):
        try:
            set_pyarrow_enabled(True)
            try:
                import pyarrow  # noqa: F401
            except ImportError:
                assert not pyarrow_enabled()
        finally:
            set_pyarrow_enabled(None)

    def test_gate_off_by_default(self):
        assert not pyarrow_enabled()

    def test_parquet_page_without_pyarrow_raises(self, spilled, tmp_path):
        try:
            import pyarrow  # noqa: F401

            pytest.skip("pyarrow importable: the error path cannot trigger")
        except ImportError:
            pass
        _db, path = spilled
        # Rewrite one manifest entry to claim a parquet page.
        import json

        meta_path = os.path.join(path, "People", "meta.json")
        with open(meta_path, encoding="utf-8") as fh:
            meta = json.load(fh)
        meta["partitions"][0]["file"] = "part-0000.parquet"
        with open(meta_path, "w", encoding="utf-8") as fh:
            json.dump(meta, fh)
        cold = open_database(path)
        with pytest.raises(StorageError, match="pyarrow"):
            cold.relation("People").rows()


class TestPartitionShardUnits:
    def test_sharded_scan_uses_partition_files_and_stays_cold(self, spilled):
        db, path = spilled
        cold = open_database(path)
        expected = Session(db).query(SELECTIVE)
        plan = compile_query(cold, parse_expression(SELECTIVE))
        ctx = ExecutionContext(cold)
        ctx.shard_config = ShardConfig(workers=3, min_rows=0, rows_per_shard=1)
        got = plan.execute(ctx, executor="sharded")
        assert got == expected
        assert cold.relation("People").is_cold
        assert "SHARDS" in plan.explain()

    def test_partition_groups_prune_and_partition_disjointly(self, spilled):
        _db, path = spilled
        store = open_database(path).relation("People").cold_store
        groups = store.scan_partition_groups(
            3, selection=((0, ">=", ("const", "p0500")),)
        )
        assert len(groups) == 3
        rows = [row for group in groups for row in group]
        assert len(rows) == len(set(rows)) == 500
        assert store.counters.partitions_pruned == 5


class TestObservableDegradations:
    def test_snapshot_demotes_sharded_with_dbpl904(self):
        diags = []
        s = Session(
            make_people_db(), on_diagnostic=diags.append,
            options=ExecOptions(executor="sharded"),
        )
        snap = s.snapshot()
        s.query(SELECTIVE, options=ExecOptions(snapshot=snap))
        assert s.fallbacks["snapshot_sharded"] == 1
        assert [d.code for d in diags] == ["DBPL904"]
        assert diags[0].severity == "hint"

    def test_process_pool_degrade_counts_with_dbpl902(self, monkeypatch):
        diags = []
        s = Session(make_people_db(), on_diagnostic=diags.append)
        config = ShardConfig(
            workers=3, min_rows=0, rows_per_shard=1, pool="process"
        )
        monkeypatch.delattr(os, "fork", raising=False)
        s.query(
            SELECTIVE,
            options=ExecOptions(executor="sharded", shard_config=config),
        )
        assert s.fallbacks["process_pool"] == 1
        assert [d.code for d in diags] == ["DBPL902"]

    def test_shipped_fallback_notes_overrides_with_dbpl903(self):
        # Source overrides shadow shipped tables, so the shipped path
        # must revert to fork-time inheritance — loudly.
        if not hasattr(os, "fork"):
            pytest.skip("no fork: the shipped path never engages")
        db = make_people_db()
        # Whole-row targets are never shipped (the pipeline needs raw
        # rows), so this must be a column-projected query.
        plan = compile_query(db, parse_expression(PROJECTED))
        events = []
        ctx = ExecutionContext(db)
        ctx.shard_config = ShardConfig(
            workers=3, min_rows=0, rows_per_shard=1,
            pool="process", inner="vector",
        )
        ctx.on_fallback = lambda kind, detail: events.append((kind, detail))
        rel = db.relation("People")
        source = plan.branches[0].steps[0].source
        ctx.source_overrides = {id(source): (rel.raw_list(), lambda pos: None)}
        expected = Session(make_people_db()).query(PROJECTED)
        assert plan.execute(ctx, executor="sharded") == expected
        assert any(kind == "ship" for kind, _detail in events)
        assert "fork-inherit" in plan.explain()

    def test_fallback_counters_cover_the_new_kinds(self):
        s = Session(make_people_db())
        for kind in ("process_pool", "ship", "snapshot_sharded"):
            assert s.fallbacks[kind] == 0
