"""Unit tests for the typed-vector layer (PR 8).

The dictionary/encoded-table machinery of
:mod:`repro.relational.vectors`, its incremental maintenance on
``Relation``, the numpy feature gate, and the pickling contract the
sharded process pool ships encoded shards with.  Cross-backend
result agreement lives in ``test_executor_properties.py``; this file
pins the data structures themselves.
"""

import pickle
import random
from array import array

import pytest

from helpers import assert_executors_agree, random_prop_database
from repro.calculus import dsl as d
from repro.relational import (
    Dictionary,
    EncodedTable,
    Relation,
    numpy_enabled,
    set_numpy_enabled,
)
from repro.relational.vectors import get_numpy, translation
from repro.types import INTEGER, STRING, record, relation_type

PART = record("partrec", part=STRING, weight=INTEGER)
PARTS = relation_type("partsrel", PART, key=("part",))


@pytest.fixture
def no_numpy():
    set_numpy_enabled(False)
    try:
        yield
    finally:
        set_numpy_enabled(None)


class TestDictionary:
    def test_encode_assigns_dense_first_encounter_ids(self):
        dic = Dictionary()
        assert [dic.encode(v) for v in ("b", "a", "b", "c")] == [0, 1, 0, 2]
        assert dic.values == ["b", "a", "c"]
        assert len(dic) == 3

    def test_encode_batch_matches_encode(self):
        dic = Dictionary()
        ids = dic.encode_batch(["x", "y", "x", "z", "y"])
        assert isinstance(ids, array)
        assert list(ids) == [0, 1, 0, 2, 1]

    def test_lookup_miss_is_minus_one(self):
        dic = Dictionary()
        dic.encode("present")
        assert dic.lookup("present") == 0
        assert dic.lookup("absent") == -1

    def test_decode_roundtrip(self):
        dic = Dictionary()
        for v in (1, "two", None, (3, 4)):
            assert dic.decode(dic.encode(v)) == v

    def test_pickle_recreates_lock_and_keeps_ids(self):
        dic = Dictionary()
        dic.encode_batch(["a", "b"])
        clone = pickle.loads(pickle.dumps(dic))
        assert clone.values == ["a", "b"]
        assert clone.lookup("b") == 1
        clone.encode("c")  # the recreated lock must work
        assert clone.lookup("c") == 2


class TestTranslation:
    def test_maps_shared_values_and_marks_misses(self):
        src, dst = Dictionary(), Dictionary()
        src.encode_batch(["a", "b", "c"])
        dst.encode_batch(["c", "a"])
        assert list(translation(src, dst)) == [1, -1, 0]

    def test_same_dictionary_is_identity(self):
        dic = Dictionary()
        dic.encode("a")
        assert translation(dic, dic) is None


def _table(rows):
    dics = (Dictionary(), Dictionary())
    return EncodedTable.from_rows(rows, dics), dics


class TestEncodedTable:
    ROWS = [("a", 1), ("b", 2), ("a", 3), ("c", 1)]

    def test_from_rows_encodes_columnwise(self):
        table, dics = _table(self.ROWS)
        assert table.n == 4
        assert list(table.columns[0].ids) == [0, 1, 0, 2]
        assert list(table.columns[1].ids) == [0, 1, 2, 0]
        assert table.rows is self.ROWS or table.rows == self.ROWS
        assert table.columns[0].dictionary is dics[0]

    def test_extended_appends_without_reencoding(self):
        table, _dics = _table(self.ROWS)
        fresh = [("b", 9), ("d", 1)]
        grown = table.extended(fresh, self.ROWS + fresh)
        assert grown.n == 6
        assert list(grown.columns[0].ids) == [0, 1, 0, 2, 1, 3]
        assert list(grown.columns[1].ids) == [0, 1, 2, 0, 3, 0]
        # The original buffers were copied, not mutated.
        assert table.n == 4
        assert len(table.columns[0].ids) == 4

    def test_groups_is_dense_id_to_row_indexes(self):
        table, _dics = _table(self.ROWS)
        assert table.groups(0) == [[0, 2], [1], [3]]
        assert table.groups(1) == [[0, 3], [1], [2]]

    def test_csr_matches_groups(self):
        if get_numpy() is None:
            pytest.skip("numpy fast path unavailable")
        table, _dics = _table(self.ROWS)
        order, starts, counts = table.csr(0)
        for g, bucket in enumerate(table.groups(0)):
            rows = sorted(order[starts[g] : starts[g] + counts[g]].tolist())
            assert rows == bucket

    def test_csr_is_none_without_numpy(self, no_numpy):
        table, _dics = _table(self.ROWS)
        assert table.csr(0) is None

    def test_pickle_ships_buffers_not_rows(self):
        table, _dics = _table(self.ROWS)
        table.groups(0)  # populate a probe cache
        clone = pickle.loads(pickle.dumps(table))
        assert clone.rows is None
        assert clone.n == 4
        assert list(clone.columns[0].ids) == [0, 1, 0, 2]
        assert clone.columns[0].dictionary.decode(2) == "c"
        # Probe caches rebuild on the far side.
        assert clone.groups(0) == [[0, 2], [1], [3]]


class TestNumpyGate:
    def test_set_numpy_enabled_forces_off(self, no_numpy):
        assert get_numpy() is None
        assert not numpy_enabled()

    def test_env_kill_switch(self, monkeypatch):
        monkeypatch.setenv("REPRO_VECTOR_NUMPY", "off")
        assert get_numpy() is None
        monkeypatch.setenv("REPRO_VECTOR_NUMPY", "1")
        set_numpy_enabled(None)
        assert numpy_enabled() == (get_numpy() is not None)

    def test_forcing_on_never_conjures_numpy(self):
        set_numpy_enabled(True)
        try:
            np = get_numpy()
            assert np is None or np.__name__ == "numpy"
        finally:
            set_numpy_enabled(None)


class TestRelationEncoding:
    def test_encoded_is_version_cached(self):
        rel = Relation("Parts", PARTS, [("table", 30), ("vase", 2)])
        table = rel.encoded()
        assert table is rel.encoded()
        assert table.n == 2

    def test_insert_maintains_encoding_incrementally(self):
        rel = Relation("Parts", PARTS, [("table", 30)])
        before = rel.encoded()
        dics = rel.dictionaries()
        rel.insert([("vase", 2)])
        after = rel.encoded()
        assert after is not before
        assert after.n == 2
        assert rel.dictionaries() is dics  # dictionaries persist
        # Ids are stable across versions: "table" keeps id 0.
        assert list(after.columns[0].ids)[0] == list(before.columns[0].ids)[0]

    def test_dictionaries_cover_all_committed_values(self):
        rel = Relation("Parts", PARTS, [("table", 30), ("vase", 2)])
        rel.encoded()
        part_dic = rel.dictionaries()[0]
        assert {part_dic.lookup("table"), part_dic.lookup("vase")} == {0, 1}


class TestSourceRefPickling:
    def test_step_zero_ref_survives_pickle(self):
        """A falsy ``__getstate__`` would skip ``__setstate__`` for key 0."""
        from repro.compiler.operators import SourceRef

        for key in (0, 3):
            clone = pickle.loads(pickle.dumps(SourceRef(key, object())))
            assert clone.key == key
            assert clone.source is None


class TestVectorFallback:
    def test_uncovered_shape_falls_back_and_agrees(self):
        """A computed-range / residual query is outside the vector
        lowering's coverage; ``executor="vector"`` must still answer via
        the columnar fallback chain."""
        rng = random.Random(23)
        db = random_prop_database(rng)
        query = d.query(
            d.branch(
                d.each("x", "P"),
                d.each("y", "Q"),
                pred=d.and_(
                    d.eq(d.a("x", "f"), d.a("y", "k")),
                    # Column-to-column comparison: not a const/param
                    # filter, so the vector lowering rejects the branch.
                    d.le(d.a("x", "n"), d.a("y", "n")),
                ),
                targets=[d.a("x", "k"), d.a("y", "f")],
            )
        )
        assert_executors_agree(db, query, executors=("vector", "batch"))
