"""Tests for graph utilities, quant graphs, and the type-checking level."""

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import paper
from repro.compiler import (
    Digraph,
    build_constructor_graph,
    build_interconnectivity_graph,
    build_query_graph,
    connected_components,
    recursive_nodes,
    strongly_connected_components,
    topological_order,
    type_check_level,
)
from repro.calculus import dsl as d

from helpers import SCENE_INFRONT


class TestGraphUtils:
    def test_scc_simple_cycle(self):
        g = Digraph()
        g.add_edge("a", "b")
        g.add_edge("b", "a")
        g.add_edge("b", "c")
        components = {frozenset(c) for c in strongly_connected_components(g)}
        assert frozenset({"a", "b"}) in components
        assert frozenset({"c"}) in components

    def test_recursive_nodes_self_loop(self):
        g = Digraph()
        g.add_edge("a", "a")
        g.add_edge("a", "b")
        assert recursive_nodes(g) == {"a"}

    def test_connected_components(self):
        comps = connected_components(
            ["a", "b", "c", "d"], [("a", "b"), ("c", "d")]
        )
        assert {frozenset(c) for c in comps} == {
            frozenset({"a", "b"}), frozenset({"c", "d"}),
        }

    def test_topological_order(self):
        g = Digraph()
        g.add_edge("a", "b")
        g.add_edge("b", "c")
        order = topological_order(g)
        assert order.index("a") < order.index("b") < order.index("c")

    def test_topological_order_cycle_raises(self):
        g = Digraph()
        g.add_edge("a", "b")
        g.add_edge("b", "a")
        with pytest.raises(ValueError):
            topological_order(g)

    edges = st.sets(
        st.tuples(st.sampled_from("abcdef"), st.sampled_from("abcdef")),
        max_size=15,
    )

    @settings(max_examples=50, deadline=None)
    @given(edges)
    def test_scc_matches_networkx(self, edges):
        g = Digraph()
        for node in "abcdef":
            g.add_node(node)
        for src, dst in edges:
            g.add_edge(src, dst)
        ours = {frozenset(c) for c in strongly_connected_components(g)}
        nxg = nx.DiGraph()
        nxg.add_nodes_from("abcdef")
        nxg.add_edges_from(edges)
        theirs = {frozenset(c) for c in nx.strongly_connected_components(nxg)}
        assert ours == theirs


class TestQuantGraphs:
    def test_fig3_ahead_structure(self):
        """The augmented quant graph of the paper's Fig. 3: head node,
        three variable nodes, attribute arcs, join arc, and the apply arc
        from the recursive range back to the head."""
        db = paper.cad_database(mutual=False)
        graph = build_constructor_graph(db, db.constructor("ahead"))
        heads = [n for n in graph.nodes.values() if n.kind == "head"]
        variables = [n for n in graph.nodes.values() if n.kind == "var"]
        assert len(heads) == 1
        assert len(variables) == 3  # r (identity), f, b
        kinds = {a.kind for a in graph.arcs}
        assert {"attr", "join", "apply"} <= kinds
        # the apply arc closes a cycle through the head: recursion
        assert graph.is_recursive()
        assert graph.recursive_heads() == {"head:ahead"}

    def test_nonrecursive_graph_acyclic(self):
        db = paper.cad_database(mutual=False)
        graph = build_constructor_graph(db, db.constructor("ahead2"))
        assert not graph.is_recursive()

    def test_mutual_recursion_cycle_spans_heads(self):
        db = paper.cad_database(mutual=True)
        graph = build_interconnectivity_graph(
            db, [db.constructor("ahead"), db.constructor("above")]
        )
        assert graph.recursive_heads() == {"head:ahead", "head:above"}

    def test_query_graph_join_arc(self):
        db = paper.cad_database(infront=SCENE_INFRONT, mutual=False)
        q = d.query(
            d.branch(
                d.each("f", "Infront"), d.each("b", "Infront"),
                pred=d.eq(d.a("f", "back"), d.a("b", "front")),
                targets=[d.a("f", "front"), d.a("b", "back")],
            )
        )
        graph = build_query_graph(db, q)
        assert any(a.kind == "join" for a in graph.arcs)
        assert len(graph.nodes) == 2

    def test_quantifier_arcs(self):
        db = paper.cad_database(mutual=False)
        q = d.query(
            d.branch(
                d.each("r", "Infront"),
                pred=d.some("s", "Infront", d.eq(d.a("r", "back"), d.a("s", "front"))),
            )
        )
        graph = build_query_graph(db, q)
        assert any(a.kind == "quant" for a in graph.arcs)

    def test_render_ascii_mentions_nodes(self):
        db = paper.cad_database(mutual=False)
        graph = build_constructor_graph(db, db.constructor("ahead"))
        text = graph.render_ascii()
        assert "CONSTRUCTOR ahead" in text
        assert "--apply-->" in text

    def test_components_partition_unrelated_constructors(self):
        db = paper.cad_database(mutual=False)  # ahead2 and ahead, same relations
        graph = build_interconnectivity_graph(
            db, [db.constructor("ahead"), db.constructor("ahead2")]
        )
        components = graph.components()
        # ahead and ahead2 do not share nodes: separate components
        assert len(components) >= 2


class TestTypeCheckLevel:
    def test_report_positivity(self):
        db = paper.cad_database(mutual=True)
        paper.define_nonsense(db)  # registered with checking off
        report = type_check_level(db)
        assert report.positivity["ahead"] is True
        assert report.positivity["nonsense"] is False

    def test_recursive_detection(self):
        db = paper.cad_database(mutual=True)
        report = type_check_level(db)
        assert {"ahead", "above"} <= report.recursive_constructors
        assert "ahead2" not in report.recursive_constructors

    def test_partitions_group_mutual_pair(self):
        db = paper.cad_database(mutual=True)
        report = type_check_level(db)
        together = [p for p in report.partitions if "ahead" in p]
        assert together and "above" in together[0]

    def test_describe_readable(self):
        db = paper.cad_database(mutual=True)
        text = type_check_level(db).describe()
        assert "positive" in text and "recursive" in text
