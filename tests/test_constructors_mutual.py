"""Mutual recursion (section 3.1): the ahead/above constructor pair."""

import pytest

from repro import paper
from repro.constructors import apply_constructor, instantiate
from repro.calculus import dsl as d

from helpers import SCENE_INFRONT, SCENE_OBJECTS, SCENE_ONTOP

#: Expected values computed by hand from the paper's definitions over the
#: scene Infront = {(table,chair),(chair,door),(rug,table)},
#: Ontop = {(vase,table),(lamp,desk)}.
EXPECTED_AHEAD = {
    ("table", "chair"), ("chair", "door"), ("rug", "table"),
    ("table", "door"), ("rug", "chair"), ("rug", "door"),
}
EXPECTED_ABOVE = {
    ("vase", "table"), ("lamp", "desk"),
    # the vase is above everything the table is (transitively) in front of
    ("vase", "chair"), ("vase", "door"),
}


@pytest.fixture
def db():
    return paper.cad_database(SCENE_OBJECTS, SCENE_INFRONT, SCENE_ONTOP, mutual=True)


class TestMutualValues:
    def test_ahead_with_ontop(self, db):
        result = apply_constructor(db, "Infront", "ahead", "Ontop")
        assert result.rows == EXPECTED_AHEAD

    def test_above_with_infront(self, db):
        result = apply_constructor(db, "Ontop", "above", "Infront")
        assert result.rows == EXPECTED_ABOVE

    def test_vase_is_above_the_chair(self, db):
        """The paper's motivating sentence: the vase (on the table, which
        is in front of the chair) is above/ahead-of the chair."""
        result = apply_constructor(db, "Ontop", "above", "Infront")
        assert ("vase", "chair") in result.rows

    def test_modes_agree_on_mutual_system(self, db):
        naive = apply_constructor(db, "Ontop", "above", "Infront", mode="naive")
        semi = apply_constructor(db, "Ontop", "above", "Infront", mode="seminaive")
        assert naive.rows == semi.rows == EXPECTED_ABOVE


class TestSystemStructure:
    def test_two_equations_shared(self, db):
        """ahead(Ontop) and above(Infront) instantiate to ONE system of two
        equations — the applications unify across the mutual bodies."""
        node = d.constructed("Infront", "ahead", d.rel("Ontop"))
        system = instantiate(db, node)
        assert len(system) == 2
        names = sorted(key.constructor for key in system.apps)
        assert names == ["above", "ahead"]

    def test_root_is_the_requested_application(self, db):
        node = d.constructed("Ontop", "above", d.rel("Infront"))
        system = instantiate(db, node)
        assert system.root.constructor == "above"

    def test_values_contain_both_applications(self, db):
        result = apply_constructor(db, "Infront", "ahead", "Ontop")
        assert len(result.values) == 2
        by_name = {k.constructor: v for k, v in result.values.items()}
        assert by_name["ahead"] == EXPECTED_AHEAD
        assert by_name["above"] == EXPECTED_ABOVE

    def test_describe_lists_applications(self, db):
        node = d.constructed("Infront", "ahead", d.rel("Ontop"))
        system = instantiate(db, node)
        text = system.describe()
        assert "ahead" in text and "above" in text


class TestPaperDoubleLoop:
    def test_double_repeat_loop_program_equivalent(self, db):
        """The section 3.1 program with auxiliary variables Ahead, Above."""
        infront = db["Infront"].rows()
        ontop = db["Ontop"].rows()

        def ahead_fct(ahead, above):
            return (
                set(infront)
                | {(f, t) for (f, b) in infront for (h, t) in ahead if b == h}
                | {(f, lo) for (f, b) in infront for (hi, lo) in above if b == hi}
            )

        def above_fct(ahead, above):
            return (
                set(ontop)
                | {(t, lo) for (t, b) in ontop for (hi, lo) in above if b == hi}
                | {(t, tl) for (t, b) in ontop for (h, tl) in ahead if b == h}
            )

        ahead: set = set()
        above: set = set()
        while True:
            oldahead, oldabove = set(ahead), set(above)
            ahead = ahead_fct(oldahead, oldabove)
            above = above_fct(oldahead, oldabove)
            if ahead == oldahead and above == oldabove:
                break
        assert ahead == EXPECTED_AHEAD
        assert above == EXPECTED_ABOVE

    def test_engine_matches_loop(self, db):
        result = apply_constructor(db, "Infront", "ahead", "Ontop")
        assert result.rows == EXPECTED_AHEAD


class TestDeepStacking:
    def test_towers_propagate(self):
        """A taller scene: a stack of objects on a table in a row of rooms."""
        infront = [("room1", "room2"), ("room2", "room3")]
        ontop = [("box", "table"), ("cup", "box"), ("table", "floor1")]
        objects = [(n, "x") for n in
                    ("room1", "room2", "room3", "box", "table", "cup", "floor1")]
        db = paper.cad_database(objects, infront, ontop, mutual=True)
        above = apply_constructor(db, "Ontop", "above", "Infront").rows
        # cup is above box, table, floor1 (transitively through ontop)
        assert ("cup", "box") in above
        assert ("cup", "table") in above
        assert ("cup", "floor1") in above

    def test_mixed_chain_through_both_relations(self):
        # a on b (ontop), b in front of c (infront), c in front of d
        infront = [("b", "c"), ("c", "d")]
        ontop = [("a", "b")]
        db = paper.cad_database([], infront, ontop, mutual=True)
        above = apply_constructor(db, "Ontop", "above", "Infront").rows
        # a is above everything b is in front of
        assert ("a", "c") in above
        assert ("a", "d") in above
