"""Property tests for fixpoint semantics (section 3.2).

Hypothesis generates random edge relations; we check the paper's formal
claims:

* the bounded sequence apply^k is monotone increasing (positivity lemma);
* the naive and semi-naive engines agree with each other, with the
  reference REPEAT-loop, and with networkx's transitive closure;
* the result is the *least* fixpoint: it is contained in every other
  fixpoint of the equations (Tarski);
* monotonicity of the constructed value in the base relation.
"""

import networkx as nx
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import paper
from repro.calculus import dsl as d
from repro.constructors import apply_constructor, construct_bounded

NODES = ["a", "b", "c", "d", "e", "f"]

edge_sets = st.sets(
    st.tuples(st.sampled_from(NODES), st.sampled_from(NODES)), max_size=14
)


def make_db(edges):
    return paper.cad_database(infront=edges, mutual=False)


def nx_closure(edges) -> set[tuple]:
    graph = nx.DiGraph()
    graph.add_nodes_from(NODES)
    graph.add_edges_from(edges)
    # non-reflexive transitive closure: (u,v) iff a non-null path u -> v,
    # which keeps (u,u) exactly when u lies on a cycle
    return set(nx.transitive_closure(graph, reflexive=False).edges())


@settings(max_examples=60, deadline=None)
@given(edge_sets)
def test_ahead_equals_networkx_closure(edges):
    db = make_db(edges)
    result = apply_constructor(db, "Infront", "ahead")
    assert result.rows == nx_closure(edges)


@settings(max_examples=40, deadline=None)
@given(edge_sets)
def test_engines_agree(edges):
    db = make_db(edges)
    naive = apply_constructor(db, "Infront", "ahead", mode="naive")
    semi = apply_constructor(db, "Infront", "ahead", mode="seminaive")
    assert naive.rows == semi.rows


@settings(max_examples=30, deadline=None)
@given(edge_sets)
def test_bounded_sequence_monotone(edges):
    db = make_db(edges)
    node = d.constructed("Infront", "ahead")
    previous = frozenset()
    for steps in range(5):
        current = construct_bounded(db, node, steps).rows
        assert previous <= current
        previous = current


@settings(max_examples=30, deadline=None)
@given(edge_sets)
def test_least_fixpoint_property(edges):
    """The engine's result is contained in every fixpoint of the equation.

    F is a fixpoint of ahead when F = E ∪ {(f,t) : (f,b) ∈ E, (h,t) ∈ F, b=h}.
    The all-pairs relation over reachable nodes is always a pre-fixpoint
    superset; we verify the computed LFP is the *smallest* fixpoint by
    checking f(LFP) = LFP and LFP ⊆ any constructed fixpoint.
    """
    db = make_db(edges)
    result = apply_constructor(db, "Infront", "ahead").rows

    def step(current: frozenset) -> frozenset:
        return frozenset(edges) | frozenset(
            (f, t) for (f, b) in edges for (h, t) in current if b == h
        )

    # 1. it is a fixpoint
    assert step(result) == result
    # 2. it is below the fixpoint obtained from any superset seed, i.e.
    #    iterating step() downward from a large fixpoint stays above LFP.
    everything = frozenset((x, y) for x in NODES for y in NODES)
    downward = everything
    for _ in range(len(NODES) + 2):
        downward = step(downward)
    assert result <= (downward | frozenset(edges))


@settings(max_examples=30, deadline=None)
@given(edge_sets, edge_sets)
def test_monotone_in_base_relation(small, extra):
    """E ⊆ E' implies ahead(E) ⊆ ahead(E') — the monotonicity lemma."""
    db_small = make_db(small)
    db_big = make_db(small | extra)
    rows_small = apply_constructor(db_small, "Infront", "ahead").rows
    rows_big = apply_constructor(db_big, "Infront", "ahead").rows
    assert rows_small <= rows_big


@settings(max_examples=25, deadline=None)
@given(edge_sets)
def test_idempotence_of_construction(edges):
    """Applying ahead to an already-closed relation adds nothing."""
    db = make_db(edges)
    closed = apply_constructor(db, "Infront", "ahead").rows
    db2 = paper.cad_database(infront=closed, mutual=False)
    assert apply_constructor(db2, "Infront", "ahead").rows == closed


@settings(max_examples=25, deadline=None)
@given(edge_sets)
def test_seminaive_iterations_not_more_than_naive(edges):
    db = make_db(edges)
    naive = apply_constructor(db, "Infront", "ahead", mode="naive")
    semi = apply_constructor(db, "Infront", "ahead", mode="seminaive")
    # semi-naive converges in at most one extra bookkeeping round
    assert semi.stats.iterations <= naive.stats.iterations + 1


ontop_sets = st.sets(
    st.tuples(st.sampled_from(NODES), st.sampled_from(NODES)), max_size=8
)


@settings(max_examples=30, deadline=None)
@given(edge_sets, ontop_sets)
def test_mutual_system_oracle(infront, ontop):
    """Mutual ahead/above against an independent double-loop oracle."""
    db = paper.cad_database(infront=infront, ontop=ontop, mutual=True)

    ahead: set = set()
    above: set = set()
    while True:
        old = (set(ahead), set(above))
        ahead = (
            set(infront)
            | {(f, t) for (f, b) in infront for (h, t) in old[0] if b == h}
            | {(f, lo) for (f, b) in infront for (hi, lo) in old[1] if b == hi}
        )
        above = (
            set(ontop)
            | {(t, lo) for (t, b) in ontop for (hi, lo) in old[1] if b == hi}
            | {(t, tl) for (t, b) in ontop for (h, tl) in old[0] if b == h}
        )
        if (ahead, above) == old:
            break

    got_ahead = apply_constructor(db, "Infront", "ahead", "Ontop").rows
    got_above = apply_constructor(db, "Ontop", "above", "Infront").rows
    assert got_ahead == ahead
    assert got_above == above
