"""Smoke tests: every example script runs to completion."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=180,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout  # every example prints its findings


def test_all_five_examples_present():
    names = {p.name for p in EXAMPLES}
    assert {
        "quickstart.py",
        "cad_scene.py",
        "bill_of_materials.py",
        "dbpl_tour.py",
        "prolog_bridge.py",
    } <= names
