"""The section 3.4 equivalence lemma, live: four engines, one answer set.

Takes a same-generation Datalog program, translates it into constructors,
and evaluates it with (1) the constructor fixpoint engine, (2) the
bottom-up Datalog engine, (3) SLD resolution, and (4) the tabled
top-down engine — then shows SLD looping on cyclic data while the
set-oriented engines terminate.

    $ python examples/prolog_bridge.py
"""

from repro.constructors import construct
from repro.datalog import DatalogEngine, datalog_to_database, parse_atom, parse_program
from repro.prolog import DepthLimitExceeded, KnowledgeBase, SLDEngine, TabledEngine

SG = """
sg(X, Y) :- flat(X, Y).
sg(X, Y) :- up(X, U), sg(U, V), down(V, Y).
"""

EDB = {
    "flat": {("a1", "b1")},
    "up": {("a2", "a1"), ("b2", "b1"), ("a3", "a2"), ("b3", "b2")},
    "down": {("a1", "a2x"), ("b1", "b2x"), ("a2x", "a3x"), ("b2x", "b3x")},
}

program = parse_program(SG)
print("program:")
print(program)

# 1. constructors (via the lemma's constructive translation)
db, apps = datalog_to_database(program, EDB)
constructed = construct(db, apps["sg"])
print(f"\nconstructor engine: {len(constructed.rows)} sg tuples "
      f"({constructed.stats.mode})")

# 2. bottom-up Datalog
datalog_rows = DatalogEngine(program, EDB).solve()["sg"]

# 3. SLD resolution, 4. tabled top-down
kb = KnowledgeBase.from_program(program, EDB)
sld_rows = SLDEngine(kb).all_answers(parse_atom("sg(X, Y)"))
tabled_rows = TabledEngine(kb).all_answers(parse_atom("sg(X, Y)"))

assert constructed.rows == datalog_rows == sld_rows == tabled_rows
print("all four engines agree:", sorted(constructed.rows))

# Termination: cyclic data --------------------------------------------------

TC = parse_program("""
ahead(X, Y) :- infront(X, Y).
ahead(X, Y) :- infront(X, Z), ahead(Z, Y).
""")
cyclic = {"infront": {("a", "b"), ("b", "c"), ("c", "a")}}

kb2 = KnowledgeBase.from_program(TC, cyclic)
try:
    SLDEngine(kb2, max_depth=200).all_answers(parse_atom("ahead(X, Y)"))
    print("\nSLD terminated (unexpected!)")
except DepthLimitExceeded:
    print("\nSLD loops on the cycle (depth budget exceeded) —")

tabled = TabledEngine(kb2).all_answers(parse_atom("ahead(X, Y)"))
db2, apps2 = datalog_to_database(TC, cyclic)
fixpoint = construct(db2, apps2["ahead"])
assert fixpoint.rows == tabled == {(x, y) for x in "abc" for y in "abc"}
print("while the set-oriented fixpoint finds all"
      f" {len(fixpoint.rows)} pairs — 'the problem of endless loops is eliminated'.")
