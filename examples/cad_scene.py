"""The paper's CAD scenario at scale: mutual recursion ahead/above.

Generates a multi-room scene (furniture rows = Infront chains, object
stacks = Ontop chains), then answers spatial queries with the mutually
recursive constructor pair of section 3.1.

    $ python examples/cad_scene.py
"""

from repro.calculus import dsl as d
from repro.compiler import compile_statement
from repro.constructors import apply_constructor
from repro.workloads import generate_scene

scene = generate_scene(rooms=3, row_length=4, stack_height=2, stacks_per_room=1)
db = scene.database(mutual=True)

print(f"scene: {len(scene.objects)} objects, {len(scene.infront)} infront, "
      f"{len(scene.ontop)} ontop facts")

# The combined relationships of section 3.1:
#   Infront{ahead(Ontop)}   and   Ontop{above(Infront)}
ahead = apply_constructor(db, "Infront", "ahead", "Ontop")
above = apply_constructor(db, "Ontop", "above", "Infront")

print(f"\n|Infront{{ahead(Ontop)}}| = {len(ahead.rows)} "
      f"({ahead.stats.mode}, {ahead.stats.iterations} iterations)")
print(f"|Ontop{{above(Infront)}}| = {len(above.rows)}")

# The paper's motivating inference: anything on top of a piece of
# furniture is above everything that furniture is in front of.
vases = sorted({high for (high, low) in above.rows if high.startswith("vase")})
if vases:
    vase = vases[0]
    print(f"\n{vase} is above: "
          + ", ".join(sorted(low for (high, low) in above.rows if high == vase)))

# A compiled query over the constructed relation: what is ahead of the
# first chair, through the full three-level compilation pipeline?
chairs = sorted(name for (name, kind) in scene.objects if kind == "chair")
target = chairs[0]
query = d.query(
    d.branch(
        d.each("r", d.constructed("Infront", "ahead", d.rel("Ontop"))),
        pred=d.eq(d.a("r", "tail"), d.const(target)),
        targets=[d.a("r", "head")],
    )
)
statement = compile_statement(db, query)
rows = statement.run()
print(f"\nobjects ahead of {target}: {sorted(r[0] for r in rows)}")
print("\ncompiled statement:")
print(statement.explain())
