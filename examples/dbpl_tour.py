"""A tour of the DBPL surface language: the paper's module, verbatim.

Declares the CAD schema, selectors, and (mutually recursive) constructors
in the paper's concrete syntax, then queries through the same syntax.

    $ python examples/dbpl_tour.py
"""

from repro.dbpl import Session
from repro.errors import IntegrityError

session = Session()
session.execute("""
MODULE cad;

TYPE parttype    = STRING;
     objectrec   = RECORD part, kind: parttype END;
     objectrel   = RELATION part OF objectrec;
     infrontrec  = RECORD front, back: parttype END;
     infrontrel  = RELATION ... OF infrontrec;
     ontoprec    = RECORD top, base: parttype END;
     ontoprel    = RELATION ... OF ontoprec;
     aheadrec    = RECORD head, tail: parttype END;
     aheadrel    = RELATION ... OF aheadrec;
     aboverec    = RECORD high, low: parttype END;
     aboverel    = RELATION ... OF aboverec;

VAR Objects: objectrel;
    Infront: infrontrel;
    Ontop:   ontoprel;

(* referential integrity: Infront must mention known objects only *)
SELECTOR refint FOR Rel: infrontrel;
BEGIN EACH r IN Rel: SOME r1, r2 IN Objects
      (r.front = r1.part AND r.back = r2.part)
END refint;

SELECTOR hidden_by (Obj: parttype) FOR Rel: infrontrel;
BEGIN EACH r IN Rel: r.front = Obj END hidden_by;

CONSTRUCTOR ahead FOR Rel: infrontrel (Ontop: ontoprel): aheadrel;
BEGIN EACH r IN Rel: TRUE,
      <r.front, ah.tail> OF EACH r IN Rel,
           EACH ah IN Rel{ahead(Ontop)}: r.back = ah.head,
      <r.front, ab.low> OF EACH r IN Rel,
           EACH ab IN Ontop{above(Rel)}: r.back = ab.high
END ahead;

CONSTRUCTOR above FOR Rel: ontoprel (Infront: infrontrel): aboverel;
BEGIN EACH r IN Rel: TRUE,
      <r.top, ab.low> OF EACH r IN Rel,
           EACH ab IN Rel{above(Infront)}: r.base = ab.high,
      <r.top, ah.tail> OF EACH r IN Rel,
           EACH ah IN Infront{ahead(Rel)}: r.base = ah.head
END above;

END cad.
""")

session.assign("Objects", [
    ("table", "furniture"), ("chair", "furniture"), ("door", "fixture"),
    ("rug", "textile"), ("vase", "decor"),
])

# Checked assignment through the referential-integrity selector (Fig. 1):
session.assign("Infront[refint]", [
    ("table", "chair"), ("chair", "door"), ("rug", "table"),
])
print("Infront =", sorted(session.query("Infront")))

try:
    session.assign("Infront[refint]", [("ghost", "chair")])
except IntegrityError as exc:
    print("rejected, as the paper requires:", exc)

session.insert("Ontop", [("vase", "table")])

# Queries in the paper's syntax -------------------------------------------

print("\nInfront[hidden_by(\"table\")] =",
      sorted(session.query('Infront[hidden_by("table")]')))

print("\nOntop{above(Infront)} =",
      sorted(session.query("Ontop{above(Infront)}")))

print("\nthe vase is above:",
      sorted(t for (h, t) in session.query("Ontop{above(Infront)}") if h == "vase"))

print("\n{EACH r IN Infront: r.back = \"door\"} =",
      sorted(session.query('{EACH r IN Infront: r.back = "door"}')))
