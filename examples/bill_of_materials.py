"""Parts explosion: the classic recursive database workload.

Builds a bill-of-materials forest, runs the ``explode`` constructor, and
compares the set-oriented engines against goal-directed evaluation for a
"which parts does assembly X contain?" point query.

    $ python examples/bill_of_materials.py
"""

from repro.bench.harness import measure
from repro.calculus import dsl as d
from repro.compiler import bound_query, construct_compiled, detect_linear_tc
from repro.constructors import apply_constructor, instantiate
from repro.workloads import bom_database, generate_bom

edges = generate_bom(assemblies=4, depth=5, fanout=3)
db = bom_database(edges)
print(f"bill of materials: {len(edges)} direct containment facts")

# Full explosion, three engine flavours ------------------------------------

naive, t_naive = measure(
    lambda: apply_constructor(db, "Contains", "explode", mode="naive")
)
semi, t_semi = measure(
    lambda: apply_constructor(db, "Contains", "explode", mode="seminaive")
)
compiled, t_comp = measure(
    lambda: construct_compiled(db, d.constructed("Contains", "explode"))
)
assert naive.rows == semi.rows == compiled.rows
print(f"|explode| = {len(semi.rows)} pairs")
print(f"  naive     {t_naive * 1000:8.2f} ms  ({naive.stats.iterations} iterations)")
print(f"  semi      {t_semi * 1000:8.2f} ms  ({semi.stats.iterations} iterations)")
print(f"  compiled  {t_comp * 1000:8.2f} ms")

# Point query: everything inside assembly0 -----------------------------------

system = instantiate(db, d.constructed("Contains", "explode"))
shape = detect_linear_tc(db, system)
assert shape is not None, "explode is linear TC-shaped"
parts, t_seed = measure(lambda: bound_query(db, shape, "head", "assembly0"))
print(f"\nassembly0 explodes into {len(parts)} parts "
      f"(seeded traversal, {t_seed * 1000:.2f} ms)")

full_filtered = {r for r in semi.rows if r[0] == "assembly0"}
assert parts == full_filtered
print("OK: seeded point query equals filter over the full explosion.")
