"""Quickstart: typed relations, selectors, and a recursive constructor.

Runs the paper's core example end to end:

    $ python examples/quickstart.py
"""

from repro import Database, STRING, record, relation_type
from repro.calculus import dsl as d
from repro.constructors import apply_constructor, define_constructor
from repro.selectors import Parameter, define_selector, selected

# 1. Types and relation variables (sections 2.1-2.2) -----------------------

INFRONTREC = record("infrontrec", front=STRING, back=STRING)
INFRONTREL = relation_type("infrontrel", INFRONTREC)
AHEADREC = record("aheadrec", head=STRING, tail=STRING)
AHEADREL = relation_type("aheadrel", AHEADREC)

db = Database("quickstart")
infront = db.declare("Infront", INFRONTREL, [
    ("table", "chair"),
    ("chair", "door"),
    ("rug", "table"),
])

# 2. A parameterized selector (section 2.3) -----------------------------------

define_selector(
    db,
    name="hidden_by",
    formal_rel="Rel",
    rel_type=INFRONTREL,
    var="r",
    pred=d.eq(d.a("r", "front"), d.param("Obj")),
    params=(Parameter("Obj", STRING),),
)

view = selected(db, "Infront", "hidden_by", "table")
print("Infront[hidden_by('table')] =", sorted(view.value()))

# 3. A recursive constructor (section 3.1) --------------------------------------
#
# CONSTRUCTOR ahead FOR Rel: infrontrel (): aheadrel;
# BEGIN EACH r IN Rel: TRUE,
#       <f.front, b.tail> OF EACH f IN Rel,
#            EACH b IN Rel{ahead}: f.back = b.head
# END ahead

define_constructor(
    db,
    name="ahead",
    formal_rel="Rel",
    rel_type=INFRONTREL,
    result_type=AHEADREL,
    body=d.query(
        d.branch(d.each("r", "Rel")),
        d.branch(
            d.each("f", "Rel"),
            d.each("b", d.constructed("Rel", "ahead")),
            pred=d.eq(d.a("f", "back"), d.a("b", "head")),
            targets=[d.a("f", "front"), d.a("b", "tail")],
        ),
    ),
)

# 4. Evaluate: the least fixpoint, semi-naive by default -------------------------

result = apply_constructor(db, "Infront", "ahead")
print(f"\nInfront{{ahead}} ({result.stats.mode}, "
      f"{result.stats.iterations} iterations):")
for head, tail in sorted(result.rows):
    print(f"  {head} is ahead of {tail}")

assert ("rug", "door") in result.rows  # rug -> table -> chair -> door
print("\nOK: the rug is (transitively) ahead of the door.")
